//! The self-describing test-case specification.
//!
//! A [`CaseSpec`] is everything needed to reproduce one harness run:
//! scenario family, world seed, and an integer-encoded fault plan. Every
//! field is an integer (probabilities in parts-per-million) so the
//! `key=value;` wire form round-trips *exactly* — a minimized failing case
//! pasted from a CI log replays bit-for-bit, with no float-formatting
//! drift.

use pds_sim::{ChurnStorm, FaultPlan, PartitionWindow, SilenceWindow, SimDuration, SimTime};

/// One part-per-million as a probability.
pub const PPM: f64 = 1e-6;

/// `count` evenly spaced partition-and-heal windows over the middle half
/// of a `horizon_s`-second run, each a tenth of the horizon long — always
/// healed well before the end — splitting the id space at `boundary`.
///
/// This is the canonical partition schedule shape shared by the DST
/// sweep ([`CaseSpec::fault_plan`]) and city-scale disaster scenarios:
/// placement is pure arithmetic over `(horizon_s, count)` — no rng — so
/// a minimized case replays its surviving windows bit-for-bit.
#[must_use]
pub fn partition_windows(horizon_s: f64, count: u32, boundary: u32) -> Vec<PartitionWindow> {
    (0..count)
        .map(|i| {
            let start = horizon_s * (0.25 + 0.5 * f64::from(i) / f64::from(count.max(1)));
            PartitionWindow {
                from: SimTime::from_secs_f64(start),
                until: SimTime::from_secs_f64(start + horizon_s * 0.1),
                boundary,
            }
        })
        .collect()
}

/// Which scenario family a case runs (see `scenario`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Raw reliable-transport traffic: checks duplicate suppression,
    /// send-result resolution, bounded retries and replay stability under
    /// arbitrary wire faults (partitions included — no recall claim).
    Transport,
    /// A PDS discovery grid: checks full recall of the stable producer
    /// set, termination and session-log legality under the paper-scale
    /// fault envelope (loss + drops + delays + duplicates + churn).
    Pds,
}

impl Family {
    fn key(self) -> &'static str {
        match self {
            Family::Transport => "transport",
            Family::Pds => "pds",
        }
    }
}

/// A complete, reproducible (scenario, fault-plan) pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseSpec {
    /// Scenario family.
    pub family: Family,
    /// Seed of the simulation world (kernel rng, MAC jitter, loss rolls).
    pub world_seed: u64,
    /// Seed of the plan-owned fault rng.
    pub plan_seed: u64,
    /// Node count: line length (transport) or grid side (pds).
    pub nodes: u32,
    /// Messages per sender (transport family).
    pub messages: u32,
    /// Payload bytes per message (transport family). Capped by the
    /// generator at four fragments so the retry budget stays exactly
    /// `max_retr` (the budget grows only past eight fragments).
    pub msg_bytes: u32,
    /// Metadata entries per producer (pds family).
    pub entries: u32,
    /// Baseline radio loss in ppm.
    pub loss_ppm: u32,
    /// Fault-injected extra drop probability in ppm.
    pub drop_ppm: u32,
    /// Fault-injected duplicate probability in ppm.
    pub dup_ppm: u32,
    /// Fault-injected delay probability in ppm.
    pub delay_ppm: u32,
    /// Upper bound of the injected delivery delay, milliseconds.
    pub delay_max_ms: u32,
    /// Number of link-level partition windows (transport family only; each
    /// heals before the next begins).
    pub partitions: u32,
    /// Number of byzantine-silent node windows.
    pub silences: u32,
    /// Number of churn storms (pds family; each removes producers).
    pub storms: u32,
    /// Ack retransmission cap (`SimConfig::ack.max_retr`).
    pub max_retr: u32,
    /// Run horizon in tenths of a simulated second.
    pub horizon_ds: u32,
}

impl CaseSpec {
    /// Run horizon as simulation time.
    #[must_use]
    pub fn horizon(&self) -> SimTime {
        SimTime::from_secs_f64(f64::from(self.horizon_ds) / 10.0)
    }

    /// Builds the kernel [`FaultPlan`] this spec describes. Window
    /// placement is pure arithmetic over the horizon so that shrinking a
    /// count field removes whole windows without moving the survivors.
    #[must_use]
    pub fn fault_plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::none(self.plan_seed);
        plan.drop_prob = f64::from(self.drop_ppm) * PPM;
        plan.dup_prob = f64::from(self.dup_ppm) * PPM;
        plan.delay_prob = f64::from(self.delay_ppm) * PPM;
        plan.delay_max = SimDuration::from_millis(u64::from(self.delay_max_ms.max(1)));
        let horizon_s = f64::from(self.horizon_ds) / 10.0;
        plan.partitions = partition_windows(horizon_s, self.partitions, self.node_count() / 2);
        for i in 0..self.silences {
            let start = horizon_s * (0.3 + 0.5 * f64::from(i) / f64::from(self.silences.max(1)));
            plan.silences.push(SilenceWindow {
                node: self.silenced_node(i),
                from: SimTime::from_secs_f64(start),
                until: SimTime::from_secs_f64(start + horizon_s * 0.1),
            });
        }
        for i in 0..self.storms {
            let at = horizon_s * (0.2 + 0.4 * f64::from(i) / f64::from(self.storms.max(1)));
            plan.storms.push(ChurnStorm {
                at: SimTime::from_secs_f64(at),
                leave: self.storm_leave(),
                rejoin: i % 2 == 1,
                rejoin_after: SimDuration::from_secs(2),
            });
        }
        plan
    }

    /// Total nodes the scenario places.
    #[must_use]
    pub fn node_count(&self) -> u32 {
        match self.family {
            Family::Transport => self.nodes,
            Family::Pds => self.nodes * self.nodes,
        }
    }

    /// The consumer's node id: the grid center (pds) or the line's far end
    /// (transport — the node the first blaster addresses last).
    #[must_use]
    pub fn consumer_id(&self) -> u32 {
        match self.family {
            Family::Transport => self.nodes.saturating_sub(1),
            Family::Pds => {
                let g = self.nodes as usize;
                pds_mobility::grid::center_index(g, g) as u32
            }
        }
    }

    /// The node id silenced by window `i`: counted down from the highest
    /// id, never the pds consumer (silencing the consumer would void the
    /// recall claim rather than test it; in the transport family every
    /// node is fair game).
    #[must_use]
    pub fn silenced_node(&self, i: u32) -> u32 {
        let n = self.node_count().max(2);
        let mut id = (n - 1).saturating_sub(i % n);
        if self.family == Family::Pds && id == self.consumer_id() {
            id = id.saturating_sub(1);
        }
        id
    }

    /// How many nodes one churn storm removes: a quarter of the grid,
    /// at least one, never the consumer.
    #[must_use]
    pub fn storm_leave(&self) -> u32 {
        (self.node_count() / 4).max(1)
    }

    /// Encodes to the one-line `key=value;` wire form.
    #[must_use]
    pub fn encode(&self) -> String {
        format!(
            "fam={};ws={};ps={};n={};msg={};mb={};ent={};loss={};drop={};dup={};delay={};dmax={};part={};sil={};storm={};retr={};hz={};",
            self.family.key(),
            self.world_seed,
            self.plan_seed,
            self.nodes,
            self.messages,
            self.msg_bytes,
            self.entries,
            self.loss_ppm,
            self.drop_ppm,
            self.dup_ppm,
            self.delay_ppm,
            self.delay_max_ms,
            self.partitions,
            self.silences,
            self.storms,
            self.max_retr,
            self.horizon_ds,
        )
    }

    /// Decodes the wire form produced by [`CaseSpec::encode`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or unknown field.
    pub fn decode(s: &str) -> Result<Self, String> {
        let mut spec = CaseSpec {
            family: Family::Transport,
            world_seed: 0,
            plan_seed: 0,
            nodes: 2,
            messages: 0,
            msg_bytes: 64,
            entries: 0,
            loss_ppm: 0,
            drop_ppm: 0,
            dup_ppm: 0,
            delay_ppm: 0,
            delay_max_ms: 1,
            partitions: 0,
            silences: 0,
            storms: 0,
            max_retr: 4,
            horizon_ds: 100,
        };
        for pair in s.split(';') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("malformed pair `{pair}`"))?;
            let num = |v: &str| -> Result<u64, String> {
                v.parse::<u64>().map_err(|e| format!("{key}={v}: {e}"))
            };
            let num32 = |v: &str| -> Result<u32, String> {
                v.parse::<u32>().map_err(|e| format!("{key}={v}: {e}"))
            };
            match key {
                "fam" => {
                    spec.family = match value {
                        "transport" => Family::Transport,
                        "pds" => Family::Pds,
                        other => return Err(format!("unknown family `{other}`")),
                    };
                }
                "ws" => spec.world_seed = num(value)?,
                "ps" => spec.plan_seed = num(value)?,
                "n" => spec.nodes = num32(value)?,
                "msg" => spec.messages = num32(value)?,
                "mb" => spec.msg_bytes = num32(value)?,
                "ent" => spec.entries = num32(value)?,
                "loss" => spec.loss_ppm = num32(value)?,
                "drop" => spec.drop_ppm = num32(value)?,
                "dup" => spec.dup_ppm = num32(value)?,
                "delay" => spec.delay_ppm = num32(value)?,
                "dmax" => spec.delay_max_ms = num32(value)?,
                "part" => spec.partitions = num32(value)?,
                "sil" => spec.silences = num32(value)?,
                "storm" => spec.storms = num32(value)?,
                "retr" => spec.max_retr = num32(value)?,
                "hz" => spec.horizon_ds = num32(value)?,
                other => return Err(format!("unknown key `{other}`")),
            }
        }
        Ok(spec)
    }

    /// A size metric the minimizer strictly decreases: the sum of every
    /// knob that shrinking can lower.
    #[must_use]
    pub fn size(&self) -> u64 {
        u64::from(self.nodes)
            + u64::from(self.messages)
            + u64::from(self.msg_bytes)
            + u64::from(self.entries)
            + u64::from(self.loss_ppm)
            + u64::from(self.drop_ppm)
            + u64::from(self.dup_ppm)
            + u64::from(self.delay_ppm)
            + u64::from(self.delay_max_ms)
            + u64::from(self.partitions)
            + u64::from(self.silences)
            + u64::from(self.storms)
            + u64::from(self.horizon_ds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CaseSpec {
        CaseSpec {
            family: Family::Pds,
            world_seed: 123_456_789_012,
            plan_seed: 42,
            nodes: 4,
            messages: 0,
            msg_bytes: 64,
            entries: 6,
            loss_ppm: 100_000,
            drop_ppm: 40_000,
            dup_ppm: 20_000,
            delay_ppm: 10_000,
            delay_max_ms: 250,
            partitions: 0,
            silences: 1,
            storms: 1,
            max_retr: 4,
            horizon_ds: 600,
        }
    }

    #[test]
    fn encode_decode_round_trips_exactly() {
        let spec = sample();
        let wire = spec.encode();
        assert_eq!(CaseSpec::decode(&wire).expect("valid"), spec);
        // And for the transport family with every window kind set.
        let mut t = sample();
        t.family = Family::Transport;
        t.nodes = 5;
        t.messages = 30;
        t.partitions = 2;
        assert_eq!(CaseSpec::decode(&t.encode()).expect("valid"), t);
    }

    #[test]
    fn decode_rejects_junk() {
        assert!(CaseSpec::decode("fam=warp;").is_err());
        assert!(CaseSpec::decode("bogus=1;").is_err());
        assert!(CaseSpec::decode("ws;").is_err());
        assert!(CaseSpec::decode("n=-3;").is_err());
    }

    #[test]
    fn fault_plan_windows_heal_before_horizon() {
        let mut spec = sample();
        spec.partitions = 3;
        spec.silences = 2;
        let plan = spec.fault_plan();
        assert_eq!(plan.partitions.len(), 3);
        assert_eq!(plan.silences.len(), 2);
        for w in &plan.partitions {
            assert!(w.until < spec.horizon(), "partition must heal in-run");
            assert!(w.from < w.until);
        }
        for w in &plan.silences {
            assert!(w.until < spec.horizon());
        }
        assert_eq!(plan.storms.len(), 1);
    }

    #[test]
    fn partition_windows_stay_inside_the_middle_of_the_run() {
        let five = partition_windows(60.0, 5, 8);
        assert_eq!(five.len(), 5);
        for w in &five {
            assert!(w.from < w.until);
            assert!(w.from >= SimTime::from_secs_f64(60.0 * 0.25));
            assert!(w.until <= SimTime::from_secs_f64(60.0 * 0.85));
            assert_eq!(w.boundary, 8);
        }
        assert!(partition_windows(60.0, 0, 8).is_empty());
    }

    #[test]
    fn silenced_node_avoids_pds_consumer() {
        let spec = sample(); // 4x4 grid, consumer at center index 10
        assert_eq!(spec.consumer_id(), 10);
        for i in 0..32 {
            assert_ne!(spec.silenced_node(i), 10, "consumer silenced at {i}");
        }
    }

    #[test]
    fn noop_spec_builds_noop_plan() {
        let mut spec = sample();
        spec.loss_ppm = 0;
        spec.drop_ppm = 0;
        spec.dup_ppm = 0;
        spec.delay_ppm = 0;
        spec.silences = 0;
        spec.storms = 0;
        assert!(spec.fault_plan().is_noop());
    }
}
