//! DST command-line driver — the CI adversarial gate.
//!
//! ```text
//! pds_dst sweep [--pairs N] [--seed S] [--jobs J] [--out FILE] [--flight-dump DIR]
//! pds_dst repro "<spec>"
//! pds_dst model-check
//! pds_dst selfcheck [--flight-dump FILE]
//! ```
//!
//! `sweep` exits non-zero if any case violates an invariant, after
//! minimizing every failure and printing its one-line repro command.
//! `selfcheck` runs a deliberately broken case (ack retries disabled under
//! churn and loss) and exits zero only if the harness catches AND
//! minimizes it — CI runs it so a silently toothless harness fails loudly.
//!
//! With `--flight-dump`, every minimized failure is re-run with the
//! bounded flight recorder installed (tracing is observation-only, so the
//! same violation reproduces) and the recorder's per-node event tails are
//! written as JSONL — feed a dump to `pds-obs explain` for the causal
//! narrative of the failing session.

use std::io::Write as _;
use std::process::ExitCode;

use pds_dst::minimize::{minimize, repro_command};
use pds_dst::model::check_standard_models;
use pds_dst::spec::{CaseSpec, Family};
use pds_dst::{run_checked, sweep};

fn usage() -> ExitCode {
    eprintln!(
        "usage: pds_dst <command>\n\
         \n\
         commands:\n\
         \x20 sweep [--pairs N] [--seed S] [--jobs J] [--out FILE] [--flight-dump DIR]\n\
         \x20       run N generated fault cases (default 1024); minimize\n\
         \x20       and print a repro line for every failure; exit 1 if any;\n\
         \x20       with --flight-dump, write a flight-recorder JSONL per\n\
         \x20       minimized failure into DIR\n\
         \x20 repro <spec>\n\
         \x20       re-run one encoded case with the replay check forced on\n\
         \x20 model-check\n\
         \x20       exhaustively check the abstract PDD/PDR session models\n\
         \x20 selfcheck [--flight-dump FILE]\n\
         \x20       verify a seeded bug is caught and minimized (CI canary);\n\
         \x20       write the minimized case's flight recording to FILE\n\
         \x20       (default dst-selfcheck.trace.jsonl)"
    );
    ExitCode::from(2)
}

fn parse_u64(args: &[String], flag: &str, default: u64) -> Result<u64, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(default),
        Some(i) => args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?
            .parse()
            .map_err(|e| format!("{flag}: {e}")),
    }
}

/// Re-runs `spec` with the bounded flight recorder installed and writes
/// the per-node event tails to `path` as JSONL (`pds-obs explain` input).
/// Tracing is observation-only, so the minimized violation reproduces in
/// the recorded rerun; a clean rerun means the determinism contract broke
/// and is reported as an error rather than papered over.
fn dump_flight(spec: &CaseSpec, path: &str) -> Result<(), String> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        }
    }
    let (outcome, recorder) = pds_dst::run_case_recorded(spec);
    if outcome.violations.is_empty() {
        return Err(format!(
            "recorded rerun of {} no longer violates — tracing perturbed the run",
            spec.encode()
        ));
    }
    recorder
        .dump_to_file(path)
        .map_err(|e| format!("write {path}: {e}"))?;
    println!(
        "  flight dump: {path} ({} events kept of {} recorded)",
        recorder.len(),
        recorder.recorded()
    );
    Ok(())
}

fn cmd_sweep(args: &[String]) -> ExitCode {
    let pairs = match parse_u64(args, "--pairs", 1024) {
        Ok(v) => v as usize,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let seed = match parse_u64(args, "--seed", 1) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let jobs = match parse_u64(args, "--jobs", 0) {
        Ok(0) => pds_bench::sweep::SweepRunner::from_env().jobs(),
        Ok(v) => v as usize,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned());
    let flight_dir = args
        .iter()
        .position(|a| a == "--flight-dump")
        .and_then(|i| args.get(i + 1).cloned());

    println!("dst sweep: {pairs} cases, seed {seed}, {jobs} jobs");
    let report = sweep(seed, pairs, jobs);
    println!(
        "dst sweep: {} cases run, {} replay-checked, {} fault events injected",
        report.cases, report.replay_checked, report.faults_injected
    );
    if report.faults_injected == 0 {
        eprintln!("dst sweep: FAIL: no faults were injected — the adversary is miswired");
        return ExitCode::FAILURE;
    }

    let mut lines = Vec::new();
    for (i, failure) in report.failures.iter().enumerate() {
        println!("---");
        println!("dst sweep: FAILING CASE {}", failure.spec.encode());
        for v in &failure.violations {
            println!("  violation: {v}");
        }
        let min = minimize(failure);
        println!(
            "  minimized in {} steps ({} attempts), size {} -> {}",
            min.steps,
            min.attempts,
            failure.spec.size(),
            min.spec.size()
        );
        for v in &min.result.violations {
            println!("  minimized violation: {v}");
        }
        let repro = repro_command(&min.spec);
        println!("  repro: {repro}");
        if let Some(dir) = &flight_dir {
            if let Err(e) = dump_flight(&min.spec, &format!("{dir}/minimized-{i}.trace.jsonl")) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
        lines.push(format!(
            "{}\t{}\t{}",
            min.spec.encode(),
            min.result.violations.first().map_or("", |v| v.as_str()),
            repro
        ));
    }
    if let Some(path) = out_path {
        // One tab-separated line per minimized failure; empty file means a
        // clean sweep. CI uploads this as the artifact.
        let body = if lines.is_empty() {
            String::new()
        } else {
            lines.join("\n") + "\n"
        };
        if let Err(e) = std::fs::File::create(&path).and_then(|mut f| f.write_all(body.as_bytes()))
        {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("dst sweep: wrote {} failure line(s) to {path}", lines.len());
    }
    if report.failures.is_empty() {
        println!("dst sweep: PASS");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "dst sweep: FAIL: {} case(s) violated invariants",
            report.failures.len()
        );
        ExitCode::FAILURE
    }
}

fn cmd_repro(args: &[String]) -> ExitCode {
    let Some(encoded) = args.first() else {
        eprintln!("error: repro needs an encoded spec argument");
        return ExitCode::from(2);
    };
    let spec = match CaseSpec::decode(encoded) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: bad spec: {e}");
            return ExitCode::from(2);
        }
    };
    println!("dst repro: {}", spec.encode());
    let result = run_checked(&spec, true);
    let s = &result.outcome.stats;
    println!(
        "  frames: {} sent, {} delivered; faults: {} cut, {} dropped, {} delayed, {} duplicated",
        s.frames_sent,
        s.frames_delivered,
        s.frames_fault_cut,
        s.frames_fault_dropped,
        s.frames_fault_delayed,
        s.frames_fault_duplicated
    );
    if let Some(d) = result.outcome.digest {
        println!("  replay digest: {d:#018x}");
    }
    if result.passed() {
        println!("dst repro: PASS (all invariants held)");
        ExitCode::SUCCESS
    } else {
        for v in &result.violations {
            println!("  violation: {v}");
        }
        println!("dst repro: FAIL (reproduced)");
        ExitCode::FAILURE
    }
}

fn cmd_model_check() -> ExitCode {
    let (states, violation) = check_standard_models();
    println!("dst model-check: {states} states explored");
    match violation {
        None => {
            println!("dst model-check: PASS");
            ExitCode::SUCCESS
        }
        Some(v) => {
            eprintln!("dst model-check: FAIL: {v}");
            ExitCode::FAILURE
        }
    }
}

/// The canary: radio loss and fault-layer drop pushed far beyond the
/// validated envelope, ack retransmissions disabled, under churn and a
/// silent node. The recall invariant must trip, and minimization must
/// land on a smaller spec that still trips it.
fn canary_spec() -> CaseSpec {
    CaseSpec {
        family: Family::Pds,
        world_seed: 1,
        plan_seed: 1,
        nodes: 3,
        messages: 0,
        msg_bytes: 64,
        entries: 6,
        loss_ppm: 650_000,
        drop_ppm: 200_000,
        dup_ppm: 30_000,
        delay_ppm: 30_000,
        delay_max_ms: 200,
        partitions: 0,
        silences: 1,
        storms: 1,
        max_retr: 0,
        horizon_ds: 900,
    }
}

fn cmd_selfcheck(args: &[String]) -> ExitCode {
    let flight_path = args
        .iter()
        .position(|a| a == "--flight-dump")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "dst-selfcheck.trace.jsonl".to_owned());
    let spec = canary_spec();
    println!("dst selfcheck: seeded bug {}", spec.encode());
    let result = run_checked(&spec, false);
    if result.passed() {
        eprintln!("dst selfcheck: FAIL: the seeded bug was NOT caught — harness is toothless");
        return ExitCode::FAILURE;
    }
    for v in &result.violations {
        println!("  caught: {v}");
    }
    let kind = result.violation_kind().map(str::to_owned);
    let min = minimize(&result);
    println!(
        "  minimized in {} steps ({} attempts), size {} -> {}",
        min.steps,
        min.attempts,
        spec.size(),
        min.spec.size()
    );
    println!("  repro: {}", repro_command(&min.spec));
    if min.spec.size() >= spec.size() {
        eprintln!("dst selfcheck: FAIL: minimization made no progress");
        return ExitCode::FAILURE;
    }
    if min.result.violation_kind().map(str::to_owned) != kind {
        eprintln!("dst selfcheck: FAIL: minimized case fails a different invariant");
        return ExitCode::FAILURE;
    }
    // The canary doubles as the end-to-end exercise of the black box: the
    // minimized failure must yield a dump `pds-obs explain` can narrate.
    if let Err(e) = dump_flight(&min.spec, &flight_path) {
        eprintln!("dst selfcheck: FAIL: {e}");
        return ExitCode::FAILURE;
    }
    println!("dst selfcheck: PASS (bug caught, minimized, and recorded)");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("repro") => cmd_repro(&args[1..]),
        Some("model-check") => cmd_model_check(),
        Some("selfcheck") => cmd_selfcheck(&args[1..]),
        _ => usage(),
    }
}
