//! Explicit-state model checking of the session state machines.
//!
//! The simulator explores one schedule per seed; the model checker explores
//! *every* schedule of a small abstract model. PDD discovery and PDR
//! retrieval are each reduced to a 3–5 node nondeterministic transition
//! system (message loss and response subsets are the nondeterminism), and a
//! breadth-first search over the full state space asserts, in every
//! reachable state, that no entry is double-counted and that every maximal
//! path terminates — with full recall whenever the adversary stayed quiet.
//!
//! The models carry `rewrite`/`dedup` mutation flags mirroring the real
//! engine's correctness mechanisms (Bloom-filter rewrite between rounds,
//! per-origin dedup of responses). Disabling either must produce a
//! counterexample; tests pin that, so the models are known to be sharp
//! enough to see the bugs they exist to catch.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Debug;

/// A finite nondeterministic transition system with a safety invariant and
/// a terminal-state acceptance condition.
pub trait Model {
    /// One global state of the abstract protocol.
    type State: Clone + Ord + Debug;

    /// The initial state.
    fn init(&self) -> Self::State;

    /// All states reachable in one step. Empty means terminal.
    fn successors(&self, s: &Self::State) -> Vec<Self::State>;

    /// Safety: must hold in every reachable state.
    fn invariant(&self, s: &Self::State) -> Result<(), String>;

    /// Liveness-at-termination: must hold in every terminal state.
    fn accept_terminal(&self, s: &Self::State) -> Result<(), String>;
}

/// A counterexample: the violation and the path that reaches it.
#[derive(Debug)]
pub struct Counterexample<S> {
    /// Why the final state is bad.
    pub violation: String,
    /// States from init to the bad state, inclusive.
    pub trace: Vec<S>,
}

/// Result of an exhaustive search.
#[derive(Debug)]
pub struct CheckReport<S> {
    /// Distinct states visited.
    pub states: usize,
    /// Terminal states seen.
    pub terminals: usize,
    /// First violation found, if any.
    pub counterexample: Option<Counterexample<S>>,
}

impl<S> CheckReport<S> {
    /// Whether the full space was explored without a violation.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.counterexample.is_none()
    }
}

fn trace_to<S: Clone + Ord>(parents: &BTreeMap<S, Option<S>>, end: &S) -> Vec<S> {
    let mut path = vec![end.clone()];
    let mut cur = end.clone();
    while let Some(Some(p)) = parents.get(&cur) {
        path.push(p.clone());
        cur = p.clone();
    }
    path.reverse();
    path
}

/// Breadth-first exploration of the full reachable state space.
///
/// # Panics
/// Panics if the space exceeds `max_states` — the models here are meant to
/// be exhaustively checkable, so running off the edge is a modelling bug.
pub fn check<M: Model>(model: &M, max_states: usize) -> CheckReport<M::State> {
    let init = model.init();
    let mut parents: BTreeMap<M::State, Option<M::State>> = BTreeMap::new();
    parents.insert(init.clone(), None);
    let mut queue: VecDeque<M::State> = VecDeque::from([init]);
    let mut report = CheckReport {
        states: 0,
        terminals: 0,
        counterexample: None,
    };
    while let Some(s) = queue.pop_front() {
        report.states += 1;
        assert!(
            report.states <= max_states,
            "state space exceeded {max_states} states: model too large"
        );
        if let Err(violation) = model.invariant(&s) {
            report.counterexample = Some(Counterexample {
                violation,
                trace: trace_to(&parents, &s),
            });
            return report;
        }
        let succ = model.successors(&s);
        if succ.is_empty() {
            report.terminals += 1;
            if let Err(violation) = model.accept_terminal(&s) {
                report.counterexample = Some(Counterexample {
                    violation,
                    trace: trace_to(&parents, &s),
                });
                return report;
            }
            continue;
        }
        for n in succ {
            if !parents.contains_key(&n) {
                parents.insert(n.clone(), Some(s.clone()));
                queue.push_back(n);
            }
        }
    }
    report
}

/// Enumerate all subsets of the `eligible` bitmask (including empty).
fn subsets(eligible: u32) -> Vec<u32> {
    let mut out = vec![0u32];
    // Standard subset-of-mask walk: (sub - 1) & mask visits all of them.
    let mut sub = eligible;
    while sub != 0 {
        out.push(sub);
        sub = (sub - 1) & eligible;
    }
    out.sort_unstable();
    out.dedup();
    out
}

// ---------------------------------------------------------------------------
// PDD discovery
// ---------------------------------------------------------------------------

/// Abstract PDD discovery: a consumer polls `producers` producers in
/// rounds. Each round, any subset of the *eligible* producers responds
/// (nondeterministic loss); a round with nothing new — or hitting the
/// round cap — ends the session.
#[derive(Debug)]
pub struct PddModel {
    /// Producers holding one entry each (≤ 5 for tractability).
    pub producers: u32,
    /// Round cap, as in `DiscoveryConfig::max_rounds`.
    pub max_rounds: u32,
    /// Model the Bloom-rewrite between rounds: already-collected producers
    /// are excluded from the next solicitation. Disabling lets them
    /// respond again — the dedup layer must then absorb the repeats.
    pub rewrite: bool,
    /// Model per-origin dedup on the consumer. Disabling double-counts.
    pub dedup: bool,
}

/// One PDD search state.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct PddState {
    /// Rounds completed.
    pub round: u32,
    /// Bitmask of producers whose entry the consumer holds.
    pub collected: u32,
    /// Entry count as the consumer's tally reports it (the thing dedup
    /// protects; diverges from popcount(collected) when dedup is off).
    pub total: u32,
    /// Session reached its termination condition.
    pub finished: bool,
    /// Whether any response was ever lost (full recall is only demanded
    /// of loss-free executions).
    pub lossy: bool,
}

impl Model for PddModel {
    type State = PddState;

    fn init(&self) -> PddState {
        assert!(self.producers <= 5, "keep the model exhaustive");
        PddState {
            round: 0,
            collected: 0,
            total: 0,
            finished: false,
            lossy: false,
        }
    }

    fn successors(&self, s: &PddState) -> Vec<PddState> {
        if s.finished {
            return Vec::new();
        }
        let all = (1u32 << self.producers) - 1;
        let eligible = if self.rewrite {
            all & !s.collected
        } else {
            all
        };
        let mut out = Vec::new();
        for responded in subsets(eligible) {
            let mut n = s.clone();
            n.round += 1;
            n.lossy |= responded != eligible;
            let fresh = responded & !n.collected;
            n.collected |= responded;
            // The consumer tallies every response it accepts; with dedup
            // only first-seen origins count, without it repeats do too.
            n.total += if self.dedup {
                fresh.count_ones()
            } else {
                responded.count_ones()
            };
            // Termination: nothing new this round, everything collected,
            // or the round cap.
            n.finished = fresh == 0 || n.collected == all || n.round >= self.max_rounds;
            out.push(n);
        }
        out
    }

    fn invariant(&self, s: &PddState) -> Result<(), String> {
        if s.total != s.collected.count_ones() {
            return Err(format!(
                "duplicate delivery: tally {} but {} distinct entries",
                s.total,
                s.collected.count_ones()
            ));
        }
        if s.round > self.max_rounds {
            return Err(format!("round {} exceeds cap {}", s.round, self.max_rounds));
        }
        Ok(())
    }

    fn accept_terminal(&self, s: &PddState) -> Result<(), String> {
        if !s.finished {
            return Err("non-terminal state has no successors".to_string());
        }
        let all = (1u32 << self.producers) - 1;
        if !s.lossy && s.collected != all {
            return Err(format!(
                "loss-free run terminated with {:#b} of {:#b} collected",
                s.collected, all
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// PDR retrieval
// ---------------------------------------------------------------------------

/// Abstract PDR retrieval: CDI collection picks routes, then chunks arrive
/// over them with nondeterministic loss; lost chunks get bounded recovery
/// re-requests.
#[derive(Debug)]
pub struct PdrModel {
    /// Chunks in the object (≤ 4 for tractability).
    pub chunks: u32,
    /// Recovery re-request rounds after the first pass.
    pub max_recovery: u32,
    /// Model per-chunk dedup: a chunk arriving twice (e.g. over two
    /// routes) is counted once. Disabling double-counts.
    pub dedup: bool,
}

/// One PDR search state.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct PdrState {
    /// 0 = CDI collection, 1 = chunk retrieval, 2 = done. Mirrors
    /// `RetrievalPhase` in `pds-core`.
    pub phase: u8,
    /// Routes established by CDI collection (1 or 2).
    pub routes: u32,
    /// Bitmask of chunks received.
    pub received: u32,
    /// Chunk tally as the consumer reports it.
    pub total: u32,
    /// Recovery rounds consumed.
    pub recovery: u32,
    /// Any chunk transmission was ever lost.
    pub lossy: bool,
}

impl Model for PdrModel {
    type State = PdrState;

    fn init(&self) -> PdrState {
        assert!(self.chunks <= 4, "keep the model exhaustive");
        PdrState {
            phase: 0,
            routes: 0,
            received: 0,
            total: 0,
            recovery: 0,
            lossy: false,
        }
    }

    fn successors(&self, s: &PdrState) -> Vec<PdrState> {
        let all = (1u32 << self.chunks) - 1;
        match s.phase {
            // CDI collection resolves to one or two routes.
            0 => [1u32, 2]
                .iter()
                .map(|&routes| PdrState {
                    phase: 1,
                    routes,
                    ..s.clone()
                })
                .collect(),
            1 => {
                let missing = all & !s.received;
                let mut out = Vec::new();
                for arrived in subsets(missing) {
                    // With two routes a chunk can arrive in duplicate;
                    // model one nondeterministic duplicated chunk.
                    let dup_options: &[u32] = if s.routes > 1 && arrived != 0 {
                        &[0, 1]
                    } else {
                        &[0]
                    };
                    for &dups in dup_options {
                        let mut n = s.clone();
                        n.lossy |= arrived != missing;
                        let fresh = arrived & !n.received;
                        n.received |= arrived;
                        n.total += if self.dedup {
                            fresh.count_ones()
                        } else {
                            arrived.count_ones() + dups
                        };
                        if n.received == all {
                            n.phase = 2;
                        } else if n.recovery < self.max_recovery {
                            n.recovery += 1;
                        } else {
                            // Recovery budget exhausted: report failure,
                            // but terminate.
                            n.phase = 2;
                        }
                        out.push(n);
                    }
                }
                out
            }
            _ => Vec::new(),
        }
    }

    fn invariant(&self, s: &PdrState) -> Result<(), String> {
        if s.total != s.received.count_ones() {
            return Err(format!(
                "duplicate chunk delivery: tally {} but {} distinct chunks",
                s.total,
                s.received.count_ones()
            ));
        }
        if s.recovery > self.max_recovery {
            return Err(format!(
                "recovery round {} exceeds cap {}",
                s.recovery, self.max_recovery
            ));
        }
        Ok(())
    }

    fn accept_terminal(&self, s: &PdrState) -> Result<(), String> {
        if s.phase != 2 {
            return Err(format!("stuck in phase {} with no successors", s.phase));
        }
        let all = (1u32 << self.chunks) - 1;
        if !s.lossy && s.received != all {
            return Err(format!(
                "loss-free retrieval finished with {:#b} of {:#b} chunks",
                s.received, all
            ));
        }
        Ok(())
    }
}

/// Runs the checker over the standard healthy model instances, as the CLI
/// and CI gate do. Returns `(states_explored, first_violation)`.
#[must_use]
pub fn check_standard_models() -> (usize, Option<String>) {
    let pdd = PddModel {
        producers: 4,
        max_rounds: 3,
        rewrite: true,
        dedup: true,
    };
    let pdr = PdrModel {
        chunks: 3,
        max_recovery: 2,
        dedup: true,
    };
    let a = check(&pdd, 200_000);
    let b = check(&pdr, 200_000);
    let states = a.states + b.states;
    let violation = a
        .counterexample
        .map(|c| format!("pdd: {} (trace length {})", c.violation, c.trace.len()))
        .or_else(|| {
            b.counterexample
                .map(|c| format!("pdr: {} (trace length {})", c.violation, c.trace.len()))
        });
    (states, violation)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsets_enumerates_the_powerset() {
        assert_eq!(subsets(0b101), vec![0b000, 0b001, 0b100, 0b101]);
        assert_eq!(subsets(0).len(), 1);
    }

    #[test]
    fn healthy_models_pass_exhaustively() {
        let (states, violation) = check_standard_models();
        assert!(violation.is_none(), "{violation:?}");
        assert!(states > 100, "exploration was not exhaustive: {states}");
    }

    #[test]
    fn pdd_without_dedup_double_counts() {
        // No rewrite means collected producers are re-solicited; without
        // dedup their repeated responses inflate the tally.
        let m = PddModel {
            producers: 3,
            max_rounds: 3,
            rewrite: false,
            dedup: false,
        };
        let r = check(&m, 200_000);
        let c = r.counterexample.expect("mutant must be caught");
        assert!(
            c.violation.contains("duplicate delivery"),
            "{}",
            c.violation
        );
        assert!(c.trace.len() >= 2, "counterexample must carry its path");
    }

    #[test]
    fn pdd_dedup_alone_absorbs_resolicited_responses() {
        // Rewrite off but dedup on: repeats arrive and are absorbed.
        let m = PddModel {
            producers: 3,
            max_rounds: 3,
            rewrite: false,
            dedup: true,
        };
        assert!(check(&m, 200_000).ok());
    }

    #[test]
    fn pdr_without_dedup_double_counts() {
        let m = PdrModel {
            chunks: 3,
            max_recovery: 2,
            dedup: false,
        };
        let r = check(&m, 200_000);
        let c = r.counterexample.expect("mutant must be caught");
        assert!(
            c.violation.contains("duplicate chunk delivery"),
            "{}",
            c.violation
        );
    }

    #[test]
    fn pdd_terminates_within_round_cap() {
        let m = PddModel {
            producers: 4,
            max_rounds: 2,
            rewrite: true,
            dedup: true,
        };
        let r = check(&m, 200_000);
        assert!(r.ok(), "{:?}", r.counterexample);
        assert!(r.terminals > 0);
    }
}
