//! Deterministic simulation testing (DST) for the PDS stack.
//!
//! This crate turns the simulator's determinism contract into an
//! adversarial testing harness:
//!
//! - [`spec`] — [`spec::CaseSpec`], a fully integer-encoded description of
//!   one test case (scenario shape + fault envelope) with an exact
//!   one-line `key=value;` codec, so any case is a copy-pasteable repro.
//! - [`scenario`] — builds the world a spec describes, runs it, and checks
//!   the invariants: no duplicate delivery, exactly-once send results,
//!   bounded retries, discovery termination and full recall of the stable
//!   producer set.
//! - [`harness`] — the seeded case generator and the parallel sweep
//!   driver (thousands of `(seed, fault-plan)` pairs per run).
//! - [`minimize`] — greedy failing-case shrinking: when a sweep finds a
//!   violation, it is reduced to a locally minimal spec that still fails
//!   the *same* invariant, and emitted as a one-line repro command.
//! - [`model`] — a small explicit-state model checker over abstract PDD
//!   discovery and PDR retrieval session machines, exploring every
//!   loss/duplication schedule a 3–5 node model admits.
//!
//! The `pds_dst` binary (`cargo run -p pds-dst -- help`) is the CI entry
//! point: `sweep` for the adversarial gate, `repro` for one-off replays,
//! `model-check` for the exhaustive session-machine pass, and `selfcheck`
//! to prove end-to-end that a seeded bug is caught and minimized.
#![forbid(unsafe_code)]

pub mod harness;
pub mod minimize;
pub mod model;
pub mod scenario;
pub mod spec;

pub use harness::{generate, run_checked, sweep, CaseResult, SweepReport};
pub use minimize::{minimize, repro_command, Minimized};
pub use scenario::{run_case, run_case_recorded, CaseOutcome};
pub use spec::{CaseSpec, Family};
