//! Case generation and the sweep driver.
//!
//! A sweep is `pairs` independent cases derived from one sweep seed; case
//! `i` is a pure function of `(sweep_seed, i)`, so any subset of a sweep
//! can be reproduced in isolation and workers may run cases in any order
//! ([`pds_bench::sweep::SweepRunner`] returns results in job order
//! regardless).

use crate::scenario::{run_case, CaseOutcome};
use crate::spec::{CaseSpec, Family};
use pds_bench::sweep::SweepRunner;
use pds_sim::SimRng;

/// Every how many cases the sweep re-runs a case to check replay equality
/// (invariant I1). Each check doubles that case's cost, so the smoke tier
/// samples rather than re-running everything.
pub const REPLAY_SAMPLE: usize = 8;

/// One case's spec, outcome and the invariants it violated.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// The case that ran.
    pub spec: CaseSpec,
    /// What it produced.
    pub outcome: CaseOutcome,
    /// All invariant breaches: the outcome's own plus replay mismatches.
    pub violations: Vec<String>,
}

impl CaseResult {
    /// Whether every invariant held.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// The first violated invariant's name (the part before `:`), used by
    /// the minimizer to preserve failure identity while shrinking.
    #[must_use]
    pub fn violation_kind(&self) -> Option<&str> {
        self.violations
            .first()
            .map(|v| v.split(':').next().unwrap_or(v).trim())
    }
}

/// Runs one case; with `check_replay` it runs twice and demands identical
/// statistics (and, under the `replay-digest` feature, identical digests).
#[must_use]
pub fn run_checked(spec: &CaseSpec, check_replay: bool) -> CaseResult {
    let outcome = run_case(spec);
    let mut violations = outcome.violations.clone();
    if check_replay {
        let rerun = run_case(spec);
        if rerun.stats != outcome.stats {
            violations.push("replay: statistics differ between identical runs".to_string());
        }
        if rerun.digest != outcome.digest {
            violations.push(format!(
                "replay: digest {:#x} vs {:#x} across identical runs",
                outcome.digest.unwrap_or(0),
                rerun.digest.unwrap_or(0)
            ));
        }
    }
    CaseResult {
        spec: spec.clone(),
        outcome,
        violations,
    }
}

/// The deterministic case generator: one spec per `(sweep_seed, index)`.
/// Seven of eight cases are transport-family (small and fast, wire
/// invariants under the full fault envelope, partitions included); every
/// eighth is a PDS discovery grid under the paper-scale envelope, where
/// full recall of the stable producer set is demanded.
#[must_use]
pub fn generate(sweep_seed: u64, index: usize) -> CaseSpec {
    let mut rng = SimRng::new(
        sweep_seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x0ddc_0ffe_e125_1312,
    );
    if index % 8 == 7 {
        generate_pds(&mut rng)
    } else {
        generate_transport(&mut rng)
    }
}

fn generate_transport(rng: &mut SimRng) -> CaseSpec {
    let messages = rng.range_u64(8, 41) as u32;
    CaseSpec {
        family: Family::Transport,
        world_seed: rng.next_u64(),
        plan_seed: rng.next_u64(),
        nodes: rng.range_u64(2, 7) as u32,
        messages,
        // Up to four fragments (4 × 1456-byte payloads), keeping the
        // retry budget at exactly `max_retr`.
        msg_bytes: rng.range_u64(16, 5_000) as u32,
        entries: 0,
        loss_ppm: rng.range_u64(0, 150_001) as u32,
        drop_ppm: rng.range_u64(0, 120_001) as u32,
        dup_ppm: rng.range_u64(0, 80_001) as u32,
        delay_ppm: rng.range_u64(0, 80_001) as u32,
        delay_max_ms: rng.range_u64(20, 501) as u32,
        partitions: rng.range_u64(0, 3) as u32,
        silences: rng.range_u64(0, 3) as u32,
        storms: 0,
        max_retr: rng.range_u64(0, 6) as u32,
        // 100 ms per message plus a 10 s tail for the retry pipeline.
        horizon_ds: messages + 100,
    }
}

fn generate_pds(rng: &mut SimRng) -> CaseSpec {
    let side = rng.range_u64(3, 5) as u32;
    CaseSpec {
        family: Family::Pds,
        world_seed: rng.next_u64(),
        plan_seed: rng.next_u64(),
        nodes: side,
        messages: 0,
        msg_bytes: 64,
        entries: rng.range_u64(4, 9) as u32,
        // The paper-scale envelope: the protocol is *supposed* to win
        // here, so recall violations are real findings, not noise.
        loss_ppm: rng.range_u64(0, 100_001) as u32,
        drop_ppm: rng.range_u64(0, 40_001) as u32,
        dup_ppm: rng.range_u64(0, 60_001) as u32,
        delay_ppm: rng.range_u64(0, 60_001) as u32,
        delay_max_ms: rng.range_u64(20, 401) as u32,
        partitions: 0,
        silences: rng.range_u64(0, 2) as u32,
        storms: rng.range_u64(0, if side >= 4 { 3 } else { 2 }) as u32,
        max_retr: 4,
        horizon_ds: 900,
    }
}

/// Summary of a sweep.
#[derive(Debug)]
pub struct SweepReport {
    /// Every failing case, in sweep order.
    pub failures: Vec<CaseResult>,
    /// Cases run.
    pub cases: usize,
    /// Cases that were replay-checked (ran twice).
    pub replay_checked: usize,
    /// Sum of fault-injected events across the sweep, as evidence the
    /// adversary actually showed up.
    pub faults_injected: u64,
}

/// Sweeps `pairs` generated cases across `jobs` workers. Results are
/// deterministic in content and order for a given `(sweep_seed, pairs)`.
#[must_use]
pub fn sweep(sweep_seed: u64, pairs: usize, jobs: usize) -> SweepReport {
    let results = SweepRunner::new(jobs).run(pairs, |i| {
        let spec = generate(sweep_seed, i);
        run_checked(&spec, i % REPLAY_SAMPLE == 0)
    });
    let mut report = SweepReport {
        failures: Vec::new(),
        cases: pairs,
        replay_checked: pairs.div_ceil(REPLAY_SAMPLE),
        faults_injected: 0,
    };
    for r in results {
        let s = &r.outcome.stats;
        report.faults_injected += s.frames_fault_cut
            + s.frames_fault_dropped
            + s.frames_fault_delayed
            + s.frames_fault_duplicated;
        if !r.passed() {
            report.failures.push(r);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_mixed() {
        let a: Vec<CaseSpec> = (0..32).map(|i| generate(11, i)).collect();
        let b: Vec<CaseSpec> = (0..32).map(|i| generate(11, i)).collect();
        assert_eq!(a, b);
        let pds = a.iter().filter(|s| s.family == Family::Pds).count();
        assert_eq!(pds, 4, "every eighth case is a pds grid");
        assert_ne!(a[0], generate(12, 0), "sweep seed matters");
    }

    #[test]
    fn transport_specs_stay_within_budget_assumptions() {
        for i in 0..64 {
            let s = generate(3, i);
            if s.family == Family::Transport {
                assert!(s.msg_bytes <= 4 * 1456, "retry budget bound broken");
                assert!(s.horizon_ds >= s.messages + 100);
            }
        }
    }

    #[test]
    fn replay_check_passes_on_a_faulted_case() {
        // A transport case under active faults, run twice: invariant I1.
        let mut spec = generate(5, 0);
        spec.drop_ppm = 90_000;
        spec.dup_ppm = 50_000;
        spec.messages = 12;
        let r = run_checked(&spec, true);
        assert!(r.passed(), "{:?}", r.violations);
    }

    #[test]
    fn small_sweep_is_clean_and_parallel_invariant() {
        let a = sweep(21, 16, 1);
        let b = sweep(21, 16, 4);
        assert_eq!(a.failures.len(), 0, "{:?}", a.failures);
        assert_eq!(b.failures.len(), 0);
        assert_eq!(a.faults_injected, b.faults_injected, "job count leaked");
        assert!(a.faults_injected > 0, "adversary never showed up");
    }
}
