//! The two scenario families the harness sweeps, and the invariant
//! witnesses collected while they run.
//!
//! Both families build a fresh [`World`] from the spec alone — no ambient
//! state — so a `(world_seed, plan_seed)` pair replays bit-identically and
//! [`pds_bench::sweep::SweepRunner`] may run cases on any worker.

use crate::spec::{CaseSpec, Family, PPM};
use bytes::Bytes;
use pds_core::{DataDescriptor, PdsConfig, PdsNode, QueryFilter};
use pds_det::DetMap;
use pds_mobility::grid;
use pds_sim::obs::FlightRecorder;
use pds_sim::{
    Application, Context, MessageHandle, MessageMeta, NodeId, Position, Scheduler, SimConfig,
    SimDuration, SimTime, Stats, TraceSink, World,
};
use std::collections::BTreeSet;

/// Everything one case run produced, for invariant checking and logs.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseOutcome {
    /// Kernel traffic counters at the end of the run.
    pub stats: Stats,
    /// Replay digest of the dispatched event stream (built with the
    /// `replay-digest` feature only).
    pub digest: Option<u64>,
    /// High-water retransmission attempt across all transports.
    pub max_attempt: u32,
    /// Invariant breaches observed in-run, by invariant name.
    pub violations: Vec<String>,
    /// Distinct application messages delivered (transport family).
    pub unique_deliveries: u64,
    /// Entries the consumer was required to collect (pds family).
    pub expected_entries: u64,
    /// Entries the consumer actually collected (pds family).
    pub collected_entries: u64,
    /// Whether the consumer's operation terminated before the horizon.
    pub finished: bool,
}

/// Runs one case start to finish and gathers its witnesses.
#[must_use]
pub fn run_case(spec: &CaseSpec) -> CaseOutcome {
    run_case_with_scheduler(spec, Scheduler::default())
}

/// [`run_case`] on an explicit event-queue implementation. The scheduler
/// is a kernel implementation detail, so the outcome must be identical
/// across schedulers — `tests/properties.rs` pins that under active
/// fault plans.
#[must_use]
pub fn run_case_with_scheduler(spec: &CaseSpec, scheduler: Scheduler) -> CaseOutcome {
    match spec.family {
        Family::Transport => run_transport(spec, scheduler, None).0,
        Family::Pds => run_pds(spec, scheduler, None).0,
    }
}

/// [`run_case`] with a bounded [`FlightRecorder`] installed: returns the
/// outcome plus the recorder holding the tail of every node's event
/// history. Tracing is observation-only — the outcome (stats, digest,
/// violations) is bit-identical to the unrecorded run — so the driver can
/// re-run a minimized failure recorded and trust the dump narrates the
/// same violation the sweep caught.
#[must_use]
pub fn run_case_recorded(spec: &CaseSpec) -> (CaseOutcome, FlightRecorder) {
    let sink = Box::new(FlightRecorder::new(
        pds_sim::obs::flight::DEFAULT_NODE_CAPACITY,
    ));
    let (outcome, sink) = match spec.family {
        Family::Transport => run_transport(spec, Scheduler::default(), Some(sink)),
        Family::Pds => run_pds(spec, Scheduler::default(), Some(sink)),
    };
    let recorder = sink
        .and_then(|mut s| {
            s.as_any_mut()
                .downcast_mut::<FlightRecorder>()
                // The box cannot be unwrapped through `dyn Any`, so swap
                // the recorder out of it instead.
                .map(|r| std::mem::replace(r, FlightRecorder::new(1)))
        })
        .expect("the installed sink is a FlightRecorder");
    (outcome, recorder)
}

fn base_outcome(world: &World) -> CaseOutcome {
    CaseOutcome {
        stats: world.stats().clone(),
        #[cfg(feature = "replay-digest")]
        digest: Some(world.replay_digest()),
        #[cfg(not(feature = "replay-digest"))]
        digest: None,
        max_attempt: world.max_retr_attempt(),
        violations: Vec::new(),
        unique_deliveries: 0,
        expected_entries: 0,
        collected_entries: 0,
        finished: true,
    }
}

// ---- transport family ------------------------------------------------------

/// Sends `total` tagged messages to a fixed neighbor, two reliable then one
/// best-effort broadcast, and records every send-result resolution.
struct Blaster {
    me: u32,
    target: NodeId,
    total: u32,
    sent: u32,
    size: usize,
    pending: DetMap<MessageHandle, ()>,
    resolved: DetMap<MessageHandle, ()>,
    double_resolved: u64,
}

/// First 12 payload bytes: sender id then message index.
fn tag_payload(sender: u32, index: u64, size: usize) -> Bytes {
    let mut buf = vec![0u8; size.max(12)];
    buf[0..4].copy_from_slice(&sender.to_le_bytes());
    buf[4..12].copy_from_slice(&index.to_le_bytes());
    Bytes::from(buf)
}

fn decode_tag(payload: &[u8]) -> Option<(u32, u64)> {
    if payload.len() < 12 {
        return None;
    }
    let sender = u32::from_le_bytes(payload[0..4].try_into().ok()?);
    let index = u64::from_le_bytes(payload[4..12].try_into().ok()?);
    Some((sender, index))
}

impl Application for Blaster {
    fn on_start(&mut self, ctx: &mut Context) {
        ctx.set_timer(SimDuration::from_millis(100), 0);
    }

    fn on_message(&mut self, _ctx: &mut Context, _meta: MessageMeta, _payload: Bytes) {}

    fn on_timer(&mut self, ctx: &mut Context, _tag: u64) {
        if self.sent >= self.total {
            return;
        }
        let payload = tag_payload(self.me, u64::from(self.sent), self.size);
        if self.sent % 3 == 2 {
            // Best-effort broadcast: no acks, no resolution expected.
            ctx.broadcast(payload, &[]);
        } else {
            let handle = ctx.broadcast(payload, &[self.target]);
            self.pending.insert(handle, ());
        }
        self.sent += 1;
        ctx.set_timer(SimDuration::from_millis(100), 0);
    }

    fn on_send_result(&mut self, _ctx: &mut Context, message: MessageHandle, _delivered: bool) {
        if self.pending.remove(&message).is_some() {
            self.resolved.insert(message, ());
        } else {
            // Either resolved twice or never issued reliably — both are
            // protocol bugs.
            self.double_resolved += 1;
        }
    }
}

/// Counts deliveries per (origin, message index) to catch duplicates that
/// leak past the transport's reassembly dedup.
struct Sink {
    counts: DetMap<(u32, u64), u32>,
    duplicates: u64,
    undecodable: u64,
}

impl Sink {
    fn new() -> Self {
        Self {
            counts: DetMap::default(),
            duplicates: 0,
            undecodable: 0,
        }
    }
}

impl Application for Sink {
    fn on_start(&mut self, _ctx: &mut Context) {}

    fn on_message(&mut self, _ctx: &mut Context, _meta: MessageMeta, payload: Bytes) {
        let Some(key) = decode_tag(&payload) else {
            self.undecodable += 1;
            return;
        };
        let count = self.counts.entry(key).or_insert(0);
        *count += 1;
        if *count > 1 {
            self.duplicates += 1;
        }
    }
}

fn run_transport(
    spec: &CaseSpec,
    scheduler: Scheduler,
    sink: Option<Box<dyn TraceSink>>,
) -> (CaseOutcome, Option<Box<dyn TraceSink>>) {
    let nodes = spec.nodes.max(2);
    let mut sim = SimConfig {
        scheduler,
        ..SimConfig::default()
    };
    sim.radio.baseline_loss = f64::from(spec.loss_ppm) * PPM;
    sim.ack.max_retr = spec.max_retr;
    let mut world = World::new(sim, spec.world_seed);
    world.install_faults(spec.fault_plan());
    if let Some(s) = sink {
        world.set_trace_sink(s);
    }

    // A line with only adjacent nodes in radio range; blasters at both
    // ends each address their immediate neighbor.
    let spacing = 60.0;
    let mut ids = Vec::new();
    for i in 0..nodes {
        let pos = Position::new(f64::from(i) * spacing, 0.0);
        let app: Box<dyn Application> = if i == 0 {
            Box::new(Blaster {
                me: 0,
                target: NodeId(1),
                total: spec.messages,
                sent: 0,
                size: spec.msg_bytes as usize,
                pending: DetMap::default(),
                resolved: DetMap::default(),
                double_resolved: 0,
            })
        } else if i == nodes - 1 && nodes >= 3 {
            Box::new(Blaster {
                me: i,
                target: NodeId(nodes - 2),
                total: spec.messages,
                sent: 0,
                size: spec.msg_bytes as usize,
                pending: DetMap::default(),
                resolved: DetMap::default(),
                double_resolved: 0,
            })
        } else {
            Box::new(Sink::new())
        };
        ids.push(world.add_node(pos, app));
    }
    world.run_until(spec.horizon());

    let mut outcome = base_outcome(&world);
    let mut unique = 0u64;
    for &id in &ids {
        if let Some(b) = world.app::<Blaster>(id) {
            if !b.pending.is_empty() {
                outcome.violations.push(format!(
                    "send-result: node {} left {} reliable sends unresolved",
                    id.0,
                    b.pending.len()
                ));
            }
            if b.double_resolved > 0 {
                outcome.violations.push(format!(
                    "send-result: node {} saw {} duplicate/unknown resolutions",
                    id.0, b.double_resolved
                ));
            }
        }
        if let Some(s) = world.app::<Sink>(id) {
            unique += s.counts.len() as u64;
            if s.duplicates > 0 {
                outcome.violations.push(format!(
                    "dup-delivery: node {} saw {} duplicate messages",
                    id.0, s.duplicates
                ));
            }
            if s.undecodable > 0 {
                outcome.violations.push(format!(
                    "dup-delivery: node {} saw {} corrupt payloads",
                    id.0, s.undecodable
                ));
            }
        }
    }
    outcome.unique_deliveries = unique;
    // Messages stay under eight fragments, so the budget is exactly
    // `max_retr` (see `Transport::on_retr_timer`).
    if outcome.max_attempt > spec.max_retr {
        outcome.violations.push(format!(
            "retry-bound: attempt high-water {} exceeds cap {}",
            outcome.max_attempt, spec.max_retr
        ));
    }
    (outcome, world.take_trace_sink())
}

// ---- pds family ------------------------------------------------------------

/// Discovery sessions the consumer may spend chasing full recall before
/// the recall invariant is judged (matches a real consumer re-querying;
/// collected entries are cached across sessions).
const MAX_DISCOVERY_ATTEMPTS: u32 = 3;

fn entry(owner: u32, k: u32) -> DataDescriptor {
    DataDescriptor::builder()
        .attr("type", "s")
        .attr("o", i64::from(owner))
        .attr("k", i64::from(k))
        .build()
}

/// Producer ids doomed by the plan's churn storms, in removal order:
/// counted down from the highest id, never the consumer.
fn doomed_ids(spec: &CaseSpec) -> Vec<Vec<u32>> {
    let consumer = spec.consumer_id();
    let mut next = spec.node_count();
    let mut take = || loop {
        next = next.saturating_sub(1);
        if next != consumer {
            return next;
        }
    };
    (0..spec.storms)
        .map(|_| (0..spec.storm_leave()).map(|_| take()).collect())
        .collect()
}

fn run_pds(
    spec: &CaseSpec,
    scheduler: Scheduler,
    sink: Option<Box<dyn TraceSink>>,
) -> (CaseOutcome, Option<Box<dyn TraceSink>>) {
    let g = spec.nodes.max(2) as usize;
    let mut sim = SimConfig::paper_multi_hop();
    sim.scheduler = scheduler;
    sim.radio.baseline_loss = f64::from(spec.loss_ppm) * PPM;
    sim.ack.max_retr = spec.max_retr;
    let mut world = World::new(sim, spec.world_seed);
    let plan = spec.fault_plan();
    let storms = plan.storms.clone();
    world.install_faults(plan);
    if let Some(s) = sink {
        world.set_trace_sink(s);
    }

    let mut ids = Vec::new();
    for (i, pos) in grid::positions(g, g, grid::SPACING_M).iter().enumerate() {
        let mut node = PdsNode::new(PdsConfig::default(), spec.world_seed ^ (0x5bd1 + i as u64));
        for k in 0..spec.entries {
            node = node.with_metadata(entry(i as u32, k), None);
        }
        ids.push(world.add_node(*pos, Box::new(node)));
    }
    let consumer = ids[spec.consumer_id() as usize];

    // Churn storms: each removes its doomed producers at `at`; storms with
    // `rejoin` add fresh (empty) nodes back at the same positions later.
    let doomed = doomed_ids(spec);
    let positions = grid::positions(g, g, grid::SPACING_M);
    for (storm, victims) in storms.iter().zip(&doomed) {
        for &v in victims {
            let id = ids[v as usize];
            world.schedule(storm.at, move |w| {
                w.remove_node(id);
            });
            if storm.rejoin {
                let pos = positions[v as usize];
                let until = storm.at + storm.rejoin_after;
                let seed = spec.world_seed ^ (0x9e37 + u64::from(v));
                world.schedule(until, move |w| {
                    w.add_node(pos, Box::new(PdsNode::new(PdsConfig::default(), seed)));
                });
            }
        }
    }

    // Producers whose entries the consumer cannot be required to collect:
    // storm victims (their data leaves with them) and silenced nodes
    // (their responses are suppressed on the wire).
    let mut excluded: BTreeSet<u32> = doomed.into_iter().flatten().collect();
    for i in 0..spec.silences {
        excluded.insert(spec.silenced_node(i));
    }
    excluded.remove(&spec.consumer_id());
    let expected = u64::from(spec.entries) * (spec.node_count() as u64 - excluded.len() as u64);

    // Discovery terminates a round after it stops yielding new entries
    // (`T_d = 0`), so a single all-lost round can end a session short. A
    // real consumer re-queries; the invariant therefore demands full
    // recall within a small budget of discovery sessions, which drives
    // the residual miss probability at paper-scale loss to negligible.
    let deadline = spec.horizon();
    world.run_until(SimTime::from_secs_f64(0.2));
    for _attempt in 0..MAX_DISCOVERY_ATTEMPTS {
        world.with_app::<PdsNode, _>(consumer, |n, ctx| {
            n.start_discovery(ctx, QueryFilter::match_all());
        });
        loop {
            let done = world
                .app::<PdsNode>(consumer)
                .and_then(PdsNode::discovery_report)
                .is_some_and(|r| r.finished_at.is_some());
            if done || world.now() >= deadline {
                break;
            }
            let next = world.now() + SimDuration::from_millis(250);
            world.run_until(next.min(deadline));
        }
        let enough = world
            .app::<PdsNode>(consumer)
            .and_then(PdsNode::discovery_report)
            .is_some_and(|r| r.entries as u64 >= expected);
        if enough || world.now() >= deadline {
            break;
        }
    }

    let mut outcome = base_outcome(&world);
    outcome.expected_entries = expected;
    let Some(report) = world
        .app::<PdsNode>(consumer)
        .and_then(PdsNode::discovery_report)
    else {
        outcome.finished = false;
        outcome
            .violations
            .push("termination: consumer or session vanished".to_string());
        return (outcome, world.take_trace_sink());
    };
    outcome.collected_entries = report.entries as u64;
    outcome.finished = report.finished_at.is_some();
    if !outcome.finished {
        outcome.violations.push(format!(
            "termination: discovery still running at the {:.1}s horizon",
            f64::from(spec.horizon_ds) / 10.0
        ));
    }
    if outcome.collected_entries < expected {
        outcome.violations.push(format!(
            "recall: collected {} of {expected} stable entries",
            outcome.collected_entries
        ));
    }
    if let Some(session) = world
        .app::<PdsNode>(consumer)
        .and_then(PdsNode::engine)
        .and_then(|e| e.discovery())
    {
        check_round_log(session.round_log(), &mut outcome.violations);
    }
    (outcome, world.take_trace_sink())
}

/// Structural legality of a discovery round log: rounds count 1, 2, 3, …
/// at non-decreasing times.
fn check_round_log(log: &[(SimTime, u32)], violations: &mut Vec<String>) {
    if log.is_empty() {
        violations.push("session-log: empty round log".to_string());
        return;
    }
    let mut last = SimTime::ZERO;
    for (i, &(at, round)) in log.iter().enumerate() {
        if round != i as u32 + 1 {
            violations.push(format!(
                "session-log: round {round} recorded at slot {i} (want {})",
                i + 1
            ));
            return;
        }
        if at < last {
            violations.push(format!("session-log: time went backwards at round {round}"));
            return;
        }
        last = at;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_transport() -> CaseSpec {
        CaseSpec {
            family: Family::Transport,
            world_seed: 7,
            plan_seed: 7,
            nodes: 3,
            messages: 10,
            msg_bytes: 64,
            entries: 0,
            loss_ppm: 0,
            drop_ppm: 0,
            dup_ppm: 0,
            delay_ppm: 0,
            delay_max_ms: 50,
            partitions: 0,
            silences: 0,
            storms: 0,
            max_retr: 4,
            horizon_ds: 120,
        }
    }

    #[test]
    fn tag_codec_round_trips() {
        let p = tag_payload(9, 1234, 300);
        assert_eq!(p.len(), 300);
        assert_eq!(decode_tag(&p), Some((9, 1234)));
        assert_eq!(decode_tag(&p[..8]), None);
    }

    #[test]
    fn quiet_transport_case_holds_all_invariants() {
        let out = run_case(&quiet_transport());
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(out.unique_deliveries > 0, "traffic must flow");
    }

    #[test]
    fn faulted_transport_case_is_deterministic() {
        let mut spec = quiet_transport();
        spec.loss_ppm = 100_000;
        spec.drop_ppm = 80_000;
        spec.dup_ppm = 60_000;
        spec.delay_ppm = 60_000;
        spec.partitions = 1;
        spec.silences = 1;
        let a = run_case(&spec);
        let b = run_case(&spec);
        assert_eq!(a, b, "identical spec must replay identically");
        assert!(a.violations.is_empty(), "{:?}", a.violations);
        assert!(
            a.stats.frames_fault_dropped > 0 || a.stats.frames_fault_cut > 0,
            "plan must bite: {:?}",
            a.stats
        );
    }

    #[test]
    fn recorded_run_matches_unrecorded_outcome() {
        let mut spec = quiet_transport();
        spec.loss_ppm = 100_000;
        spec.drop_ppm = 80_000;
        let plain = run_case(&spec);
        let (recorded, recorder) = run_case_recorded(&spec);
        assert_eq!(
            plain, recorded,
            "flight recording must not perturb the outcome"
        );
        assert!(recorder.recorded() > 0, "recorder captured nothing");
        let events = recorder.dump();
        assert!(!events.is_empty());
        // The dump is in emission order.
        assert!(events.windows(2).all(|w| w[0].at_us <= w[1].at_us));
    }

    #[test]
    fn doomed_ids_skip_consumer() {
        let mut spec = quiet_transport();
        spec.family = Family::Pds;
        spec.nodes = 3;
        spec.storms = 2;
        let doomed = doomed_ids(&spec);
        assert_eq!(doomed.len(), 2);
        let consumer = spec.consumer_id();
        for v in doomed.into_iter().flatten() {
            assert_ne!(v, consumer);
        }
    }

    #[test]
    fn round_log_checker_rejects_gaps_and_time_travel() {
        let t = SimTime::from_secs_f64;
        let mut v = Vec::new();
        check_round_log(&[(t(0.2), 1), (t(1.0), 2)], &mut v);
        assert!(v.is_empty());
        check_round_log(&[(t(0.2), 1), (t(1.0), 3)], &mut v);
        assert_eq!(v.len(), 1);
        v.clear();
        check_round_log(&[(t(1.0), 1), (t(0.5), 2)], &mut v);
        assert_eq!(v.len(), 1);
        v.clear();
        check_round_log(&[], &mut v);
        assert_eq!(v.len(), 1);
    }
}
