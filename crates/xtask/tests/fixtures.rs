//! Fixture pinning for every lint rule family.
//!
//! The fixture tree under `crates/xtask/fixtures/` mirrors real workspace
//! path shapes (`sim/…`, `core/engine/…`, `…/src/lib.rs`) so the rules'
//! path scoping applies exactly as it does on the real tree:
//!
//! * every file under `accept/` must lint clean (no error findings);
//! * every file under `reject/` must produce at least one error;
//! * targeted assertions pin the rule name, span, and message shape of
//!   each rule family's canonical violation.
//!
//! The engine's workspace walk skips `fixtures/` directories, so these
//! files never pollute a real `cargo xtask lint` run.

use pds_lint::rules::{default_rules, Workspace};
use pds_lint::source::SourceFile;
use pds_lint::{Diagnostic, Exemption, Severity};
use std::path::{Path, PathBuf};

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

/// Lints one fixture file with the full default registry, returning
/// (findings, exemptions). The path is fixture-relative so component
/// scoping sees `sim/…`, `core/…`, etc.
fn lint_fixture(rel: &Path) -> (Vec<Diagnostic>, Vec<Exemption>) {
    let text = std::fs::read_to_string(fixtures_root().join(rel))
        .unwrap_or_else(|e| panic!("read {}: {e}", rel.display()));
    let file = SourceFile::parse(rel, text);
    let mut findings = Vec::new();
    let mut exemptions = Vec::new();
    pds_lint::engine::check_one(&file, &default_rules(), &mut findings, &mut exemptions);
    (findings, exemptions)
}

fn errors(findings: &[Diagnostic]) -> Vec<&Diagnostic> {
    findings
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .collect()
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .collect::<Result<Vec<_>, _>>()
        .unwrap();
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for e in entries {
        let p = e.path();
        if p.is_dir() {
            walk_rs(&p, out);
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
}

fn fixture_files(sub: &str) -> Vec<PathBuf> {
    let root = fixtures_root();
    let mut files = Vec::new();
    walk_rs(&root.join(sub), &mut files);
    assert!(!files.is_empty(), "no fixtures under {sub}");
    files
        .into_iter()
        .map(|p| p.strip_prefix(&root).unwrap().to_path_buf())
        .collect()
}

#[test]
fn every_accept_fixture_lints_clean() {
    for rel in fixture_files("accept") {
        let (findings, _) = lint_fixture(&rel);
        let errs = errors(&findings);
        assert!(
            errs.is_empty(),
            "{} should be accepted, got: {:#?}",
            rel.display(),
            errs
        );
    }
}

#[test]
fn every_reject_fixture_is_caught() {
    for rel in fixture_files("reject") {
        let (findings, _) = lint_fixture(&rel);
        assert!(
            !errors(&findings).is_empty(),
            "{} should be rejected but linted clean",
            rel.display()
        );
    }
}

#[test]
fn aliased_hashmap_is_resolved_through_the_use_tree() {
    let (findings, _) = lint_fixture(Path::new("reject/sim/aliased_hashmap.rs"));
    let errs = errors(&findings);
    assert!(
        errs.iter().all(|d| d.rule == "std-collections"),
        "{errs:#?}"
    );
    // Import + type position + constructor call.
    assert_eq!(errs.len(), 3, "{errs:#?}");
    assert!(
        errs[0].message.contains("aliased as `Map`"),
        "{}",
        errs[0].message
    );
}

#[test]
fn hashmap_fixture_pins_spans() {
    let (findings, _) = lint_fixture(Path::new("reject/sim/std_hashmap.rs"));
    let errs = errors(&findings);
    assert!(!errs.is_empty());
    // The import on line 5 anchors at the leaf segment.
    assert_eq!(errs[0].line, 5, "{errs:#?}");
    assert!(errs[0].excerpt.contains("use std::collections::HashMap"));
}

#[test]
fn wall_clock_fixture_flags_import_and_call() {
    let (findings, _) = lint_fixture(Path::new("reject/sim/bare_instant.rs"));
    let errs = errors(&findings);
    assert!(errs.iter().all(|d| d.rule == "wall-clock"), "{errs:#?}");
    let lines: Vec<u32> = errs.iter().map(|d| d.line).collect();
    assert!(lines.contains(&6), "import line: {lines:?}");
    assert!(lines.contains(&9), "call line: {lines:?}");
}

#[test]
fn entropy_fixture_flags_thread_rng_and_from_entropy() {
    let (findings, _) = lint_fixture(Path::new("reject/core/thread_rng.rs"));
    let errs = errors(&findings);
    assert!(errs.iter().all(|d| d.rule == "entropy-rng"), "{errs:#?}");
    assert!(
        errs.iter().any(|d| d.message.contains("from_entropy")),
        "{errs:#?}"
    );
}

#[test]
fn thread_fixtures_cover_sim_and_dst_but_not_bench() {
    for rel in ["reject/sim/thread.rs", "reject/dst/thread.rs"] {
        let (findings, _) = lint_fixture(Path::new(rel));
        assert!(
            errors(&findings).iter().any(|d| d.rule == "thread-pool"),
            "{rel} should be caught"
        );
    }
    let (findings, _) = lint_fixture(Path::new("accept/bench/pool.rs"));
    assert!(errors(&findings).is_empty(), "bench pool is exempt");
}

#[test]
fn sans_io_fixture_flags_sockets_and_fs() {
    let (findings, _) = lint_fixture(Path::new("reject/core/net_io.rs"));
    let errs = errors(&findings);
    assert!(errs.iter().all(|d| d.rule == "sans-io"), "{errs:#?}");
    assert!(
        errs.iter().any(|d| d.message.contains("std::net")),
        "{errs:#?}"
    );
    assert!(
        errs.iter().any(|d| d.message.contains("std::fs")),
        "{errs:#?}"
    );
}

#[test]
fn panic_fixture_flags_all_four_shapes() {
    let (findings, _) = lint_fixture(Path::new("reject/sim/wheel.rs"));
    let errs = errors(&findings);
    assert!(errs.iter().all(|d| d.rule == "panic"), "{errs:#?}");
    let msgs: Vec<&str> = errs.iter().map(|d| d.message.as_str()).collect();
    assert!(msgs.iter().any(|m| m.contains("`.unwrap()`")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("`.expect()`")), "{msgs:?}");
    assert!(
        msgs.iter().any(|m| m.contains("slice/array indexing")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("`unreachable!`")),
        "{msgs:?}"
    );
    // Findings name the enclosing function.
    assert!(
        msgs.iter().any(|m| m.contains("in `Wheel::pop_front`")),
        "{msgs:?}"
    );
}

#[test]
fn engine_step_fixture_is_in_panic_scope() {
    let (findings, _) = lint_fixture(Path::new("reject/core/engine/pdr.rs"));
    let errs = errors(&findings);
    assert_eq!(errs.len(), 2, "{errs:#?}");
    assert!(errs.iter().all(|d| d.rule == "panic"));
}

#[test]
fn audited_panic_pragma_becomes_a_ratcheted_exemption() {
    let (findings, exemptions) = lint_fixture(Path::new("accept/sim/wheel.rs"));
    assert!(errors(&findings).is_empty(), "{findings:#?}");
    assert_eq!(exemptions.len(), 1, "{exemptions:#?}");
    assert_eq!(exemptions[0].rule, "panic");
    assert!(exemptions[0].reason.contains("modulo"));
}

#[test]
fn audited_shard_executor_pragma_becomes_a_ratcheted_exemption() {
    // The accept fixture mirrors crates/sim/src/shard.rs: scoped threads
    // under a `thread-pool` pragma whose audit reason the ratchet pins.
    let (findings, exemptions) = lint_fixture(Path::new("accept/sim/shard_scope.rs"));
    assert!(errors(&findings).is_empty(), "{findings:#?}");
    assert_eq!(exemptions.len(), 1, "{exemptions:#?}");
    assert_eq!(exemptions[0].rule, "thread-pool");
    assert!(
        exemptions[0].reason.contains("frozen snapshot"),
        "{}",
        exemptions[0].reason
    );
    // The same executor shape without the pragma is still rejected — the
    // exemption is per-site, not a blanket license for sim threads.
    let (findings, _) = lint_fixture(Path::new("reject/sim/shard_channel.rs"));
    let errs = errors(&findings);
    assert!(errs.iter().any(|d| d.rule == "thread-pool"), "{errs:#?}");
    assert!(
        errs.iter().any(|d| d.message.contains("mpsc")),
        "channels are scheduling-order-dependent too: {errs:#?}"
    );
}

#[test]
fn slab_fixture_needs_no_exemptions() {
    // The memory-diet slab idiom (checked `.get()` access, `?`-chained
    // SoA borrows — DESIGN.md §16) lints clean without a single audited
    // pragma: it is panic-free by construction, not by exemption.
    let (findings, exemptions) = lint_fixture(Path::new("accept/sim/slab_table.rs"));
    assert!(errors(&findings).is_empty(), "{findings:#?}");
    assert!(exemptions.is_empty(), "{exemptions:#?}");
}

#[test]
fn unsafe_fixture_flags_missing_forbid_and_missing_safety() {
    let (findings, _) = lint_fixture(Path::new("reject/unsafe/src/lib.rs"));
    let errs = errors(&findings);
    assert_eq!(errs.len(), 2, "{errs:#?}");
    assert!(errs
        .iter()
        .any(|d| d.message.contains("forbid(unsafe_code)")));
    assert!(errs.iter().any(|d| d.message.contains("SAFETY")));
}

#[test]
fn layering_fixture_flags_core_depending_on_sim() {
    let manifests = pds_lint::manifest::load_workspace(&fixtures_root().join("layering")).unwrap();
    assert_eq!(manifests.len(), 2);
    let ws = Workspace { manifests };
    let mut out = Vec::new();
    for rule in default_rules() {
        rule.check_workspace(&ws, &mut out);
    }
    assert!(
        out.iter().any(|d| d.rule == "layering"
            && d.message.contains("`pds-core` may not depend on `pds-sim`")),
        "{out:#?}"
    );
    assert!(
        out.iter().any(|d| d.message.contains("dependency cycle")),
        "{out:#?}"
    );
    // The violation is anchored to the manifest line that introduced it.
    let edge = out
        .iter()
        .find(|d| d.message.contains("may not depend on"))
        .unwrap();
    assert!(edge.path.ends_with("crates/core/Cargo.toml"));
    assert!(edge.line > 1);
}
