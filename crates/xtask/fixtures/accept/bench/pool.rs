//! Fixture: the bench layer may use threads — it parallelizes over whole
//! independent worlds (one per job), never inside a simulation.

fn fan_out(jobs: usize) {
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| {});
        }
    });
}
