//! Fixture: the single audited bench timing helper. The file-level pragma
//! (with its mandatory justification) exempts the wall-clock rule and is
//! echoed in the lint output as an audited exemption.

// det-lint: allow(wall-clock) -- benches measure host wall time by design;
// this helper is the one audited place they read the clock.

use std::time::Instant;

/// Wall-clock stopwatch for benchmark binaries.
pub struct WallClock(Instant);

impl WallClock {
    pub fn start() -> Self {
        Self(Instant::now())
    }

    pub fn elapsed_s(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}
