//! Fixture: the workspace-standard crate root — `forbid(unsafe_code)`
//! present, no unsafe anywhere. The word "unsafe" in this comment must
//! not trip the audit.

#![forbid(unsafe_code)]

pub fn read_first(bytes: &[u8]) -> Option<u8> {
    bytes.first().copied()
}
