//! Fixture: hot-path indexing justified by an audited pragma. The
//! invariant is stated after `--`; the lint converts the finding into a
//! ratcheted exemption instead of an error.

pub struct Wheel {
    slots: Vec<Vec<u64>>,
    cursor: usize,
}

impl Wheel {
    pub fn current_slot(&mut self) -> &mut Vec<u64> {
        // lint: allow(panic) -- cursor is reduced modulo slots.len() on every advance
        &mut self.slots[self.cursor]
    }

    pub fn peek(&self) -> Option<u64> {
        self.slots.get(self.cursor).and_then(|s| s.first()).copied()
    }
}
