//! Fixture: the slab/SoA kernel storage idiom (DESIGN.md §16) the memory
//! diet steers hot paths toward. Dense `Vec<Option<T>>` slabs indexed by
//! a monotone id use checked `.get()` access — never slice indexing or
//! `.unwrap()` — so a stale handle is a `None` miss, not a panic; the
//! panic rule must accept this shape as written.

pub struct Id(pub u32);

pub struct Slab<T> {
    slots: Vec<Option<T>>,
    flags: Vec<u8>,
}

impl<T> Slab<T> {
    pub fn get(&self, id: &Id) -> Option<&T> {
        self.slots.get(id.0 as usize)?.as_ref()
    }

    /// SoA split: the value and its hot flag byte, borrowed together.
    pub fn parts_mut(&mut self, id: &Id) -> Option<(&mut T, &mut u8)> {
        let slot = self.slots.get_mut(id.0 as usize)?.as_mut()?;
        let flag = self.flags.get_mut(id.0 as usize)?;
        Some((slot, flag))
    }

    /// Ascending-id iteration, bit-identical to the `BTreeMap` it replaced.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| Some((i as u32, s.as_ref()?)))
    }
}
