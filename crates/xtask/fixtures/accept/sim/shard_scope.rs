//! Fixture: the audited shard verdict executor — scoped threads inside
//! the simulation crate justified by a `thread-pool` pragma. The audit
//! argument after `--` is what the ratchet pins: workers only evaluate a
//! pure function over a frozen snapshot, so scheduling cannot reorder
//! anything observable.

fn round(work: &[Vec<u64>]) -> Vec<Vec<u64>> {
    // lint: allow(thread-pool) -- audited shard executor: workers run a pure verdict function over a frozen snapshot; results merge in fixed shard order
    std::thread::scope(|s| {
        let handles: Vec<_> = work
            .iter()
            .map(|ids| s.spawn(move || ids.iter().map(|i| i * 2).collect::<Vec<_>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(p) => std::panic::resume_unwind(p),
            })
            .collect()
    })
}
