//! Fixture: deterministic collections and ordered maps — the replacements
//! the lint steers code toward. Mentions of HashMap and HashSet in
//! comments and strings (like these, or the error text below) are not
//! code and must not be flagged.

use pds_det::{DetMap, DetSet};
use std::collections::BTreeMap;

pub struct Tables {
    by_id: DetMap<u64, u64>,
    seen: DetSet<u64>,
    sorted: BTreeMap<u64, u64>,
}

impl Tables {
    pub fn insert(&mut self, k: u64, v: u64) {
        self.by_id.insert(k, v);
        self.seen.insert(k);
        self.sorted.insert(k, v);
    }

    pub fn explain(&self) -> &'static str {
        "DetMap replaces std HashMap: fixed-seed hashing, replay-stable iteration"
    }
}
