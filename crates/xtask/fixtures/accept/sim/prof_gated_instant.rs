//! Fixture: wall-clock use gated behind `#[cfg(feature = "prof")]` — the
//! code is compiled out of every replay build, so the lint accepts it.

pub fn dispatch(run: impl FnOnce()) {
    #[cfg(feature = "prof")]
    let t0 = std::time::Instant::now();
    run();
    #[cfg(feature = "prof")]
    println!("dispatch took {:?}", t0.elapsed());
}

#[cfg(feature = "prof")]
pub fn profile_block(run: impl FnOnce()) -> std::time::Duration {
    let t0 = std::time::Instant::now();
    run();
    t0.elapsed()
}
