//! Fixture: a crate root without `#![forbid(unsafe_code)]` holding an
//! unsafe block with no `// SAFETY:` rationale. Both must be flagged.

pub fn read_first(bytes: &[u8]) -> u8 {
    unsafe { *bytes.as_ptr() }
}
