//! Fixture: the DST harness is *not* the bench exemption — rolling its
//! own worker pool (instead of going through `pds_bench::sweep`) must be
//! rejected, or case results could depend on thread interleaving.

fn sweep_cases() {
    std::thread::spawn(|| {});
}
