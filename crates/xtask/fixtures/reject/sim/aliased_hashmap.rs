//! Fixture: a std `HashMap` smuggled in behind an `as` rename — the hole
//! the old lexical scanner could not see. Use-tree resolution must flag
//! both the import and every use of the alias.

use std::collections::HashMap as Map;

pub struct Timers {
    by_id: Map<u64, u64>,
}

impl Timers {
    pub fn new() -> Self {
        Self { by_id: Map::new() }
    }
}
