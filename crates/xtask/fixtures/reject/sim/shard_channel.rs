//! Fixture: a shard-executor-shaped worker pool WITHOUT the audit pragma
//! must still be rejected — the exemption is per-site, not a blanket
//! license for threads in the kernel. Channels are caught too: mpsc
//! receive order depends on host scheduling.

fn round(work: &[Vec<u64>]) -> Vec<u64> {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::scope(|s| {
        for ids in work {
            let tx = tx.clone();
            s.spawn(move || tx.send(ids.len() as u64));
        }
    });
    drop(tx);
    rx.iter().collect()
}
