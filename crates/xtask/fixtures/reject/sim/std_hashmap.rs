//! Fixture: simulation-kernel-style code using a std `HashMap`. The
//! determinism lint must reject it — `RandomState` iteration order
//! differs per process and leaks into event ordering.

use std::collections::HashMap;

pub struct Timers {
    by_id: HashMap<u64, u64>,
}

impl Timers {
    pub fn new() -> Self {
        Self {
            by_id: HashMap::new(),
        }
    }

    pub fn drain_in_iteration_order(&mut self) -> Vec<u64> {
        // Feeding map iteration order into scheduling is exactly the bug
        // class the lint exists to catch.
        self.by_id.keys().copied().collect()
    }
}
