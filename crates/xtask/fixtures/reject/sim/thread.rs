//! Fixture: spawning threads inside simulation code must be rejected —
//! scheduler-dependent interleaving would break replay equality.

fn run_worlds() {
    std::thread::scope(|s| {
        s.spawn(|| {});
    });
}
