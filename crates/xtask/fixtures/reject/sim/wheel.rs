//! Fixture: timer-wheel-style code that can panic mid-dispatch. The
//! panic rule must flag the `.unwrap()`, the `.expect(…)`, the bare
//! slice index, and the `unreachable!` — each would poison a
//! half-drained event queue and desync the replay digest.

pub struct Wheel {
    slots: Vec<Vec<u64>>,
    cursor: usize,
}

impl Wheel {
    pub fn pop_front(&mut self) -> u64 {
        let slot = self.slots.get_mut(self.cursor).unwrap();
        slot.pop().expect("slot checked non-empty")
    }

    pub fn peek(&self) -> u64 {
        self.slots[self.cursor][0]
    }

    pub fn advance(&mut self) {
        match self.cursor.checked_add(1) {
            Some(next) => self.cursor = next % self.slots.len(),
            None => unreachable!("cursor wrapped"),
        }
    }
}
