//! Fixture: kernel-style code reading the host clock outside any `prof`
//! gate or audited helper. Both the import and the call must be flagged
//! (and the `Instant` mentions in these comments must not be).
// The findings test pins the exact line numbers below; keep the import on
// line 6 and the call on line 9.
use std::time::Instant;

pub fn dispatch_with_timing() -> u128 {
    let t0 = Instant::now();
    t0.elapsed().as_nanos()
}
