//! Fixture: protocol-engine-style code touching sockets and the
//! filesystem directly. The sans-io rule must reject every hole in the
//! Application/Command seam — the same engine must run unchanged under
//! the deterministic simulator and a future real network backend.

use std::net::UdpSocket;

pub fn announce(payload: &[u8]) {
    let sock = UdpSocket::bind("0.0.0.0:0").ok();
    if let Some(s) = sock {
        let _ = s.send_to(payload, "255.255.255.255:9999");
    }
    let _ = std::fs::write("/tmp/pds-announce.log", payload);
}
