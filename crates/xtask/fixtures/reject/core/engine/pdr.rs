//! Fixture: a PDR-style step function that panics on a malformed
//! response. Engine step functions run inside `World::dispatch`; they
//! must surface protocol errors as values, never unwind.

pub struct Retrieval {
    pending: Vec<u64>,
}

impl Retrieval {
    pub fn step(&mut self, chunk: Option<u64>) -> u64 {
        let c = chunk.expect("responder always sets the chunk id");
        if self.pending.is_empty() {
            panic!("step after completion");
        }
        self.pending.retain(|&p| p != c);
        c
    }
}
