//! Fixture: protocol-engine-style code drawing entropy-seeded randomness.
//! The lint must reject it — all randomness must flow from the run seed
//! through `SimRng`, or replays diverge.

pub fn pick_backoff_ms() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen_range(0..100)
}

pub fn fresh_query_nonce() -> u64 {
    let mut rng = rand::rngs::SmallRng::from_entropy();
    rng.next_u64()
}
