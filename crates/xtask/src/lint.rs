//! The determinism lint (DESIGN.md §8).
//!
//! The simulation crates promise bit-identical replays for identical
//! (config, seed, scenario) triples. Three families of std constructs
//! silently break that promise, and this lint statically rejects them in
//! `crates/{sim,core,mobility,bloom,bench}` and `tests/`:
//!
//! * **`std-collections`** — `HashMap`/`HashSet` (and `RandomState`,
//!   `hash_map`, `hash_set` paths). `RandomState` seeds SipHash from OS
//!   entropy per process, so iteration order differs run to run; any
//!   iteration feeding event ordering, rng consumption, or f64 summation
//!   order destroys replay equality. Use `pds_det::{DetMap, DetSet}` —
//!   their iteration order is a pure function of the insert/remove
//!   history — or `BTreeMap`/`BTreeSet` where sorted order is wanted.
//!   This also covers the "iteration over unordered maps feeding event
//!   ordering" hazard by construction: once no unordered map exists in
//!   the simulation crates, no iteration over one can leak into event
//!   order.
//! * **`wall-clock`** — `Instant`/`SystemTime`/`UNIX_EPOCH`. Host time
//!   must never influence simulation state; virtual time lives in
//!   `SimTime`. Profiling and benchmarking read the clock through two
//!   audited exemptions (`pds-sim/src/prof.rs`, `pds-bench` metrics).
//! * **`entropy-rng`** — `thread_rng`/`from_entropy`/`OsRng`/`getrandom`.
//!   All randomness must flow from the run's seed through `SimRng`.
//! * **`thread-pool`** — `thread`/`rayon`/`ThreadPool`. Worker threads
//!   inside the simulation kernel would make event order depend on the
//!   scheduler. Parallelism lives one layer up: `crates/bench` (the only
//!   exempt directory) runs *whole independent worlds* on worker threads
//!   via `pds_bench::sweep`, which is parallelism over runs, never inside
//!   one.
//!
//! The scan is lexical, not syntactic: comments and string/char literal
//! contents are blanked (preserving byte positions, hence line numbers)
//! and the residue is scanned for word-boundary tokens. Two escape
//! hatches exist, both designed to be visible in review:
//!
//! 1. An item or statement immediately preceded by
//!    `#[cfg(feature = "prof")]` is exempt — it is compiled out of every
//!    replay build, so it cannot affect replayed state.
//! 2. A file containing the pragma
//!    `// det-lint: allow(<rule>) -- <reason>` exempts that rule for the
//!    whole file. Every pragma is echoed in the lint output as an audited
//!    exemption, so the full list is one `cargo xtask lint-determinism`
//!    away.

use std::fmt;
use std::path::{Path, PathBuf};

/// A lint rule: a name plus the identifier tokens whose presence violates
/// it.
pub struct Rule {
    /// Rule name, as used in `det-lint: allow(<name>)` pragmas.
    pub name: &'static str,
    /// Offending identifier tokens, matched at word boundaries.
    pub tokens: &'static [&'static str],
    /// What to use instead; printed with each finding.
    pub instead: &'static str,
    /// Directory names (matched against any path component) where this
    /// rule does not apply — a structural exemption for a whole layer, as
    /// opposed to the per-file pragma.
    pub exempt_dirs: &'static [&'static str],
}

/// The rule set enforced on the simulation crates.
pub const RULES: &[Rule] = &[
    Rule {
        name: "std-collections",
        tokens: &["HashMap", "HashSet", "hash_map", "hash_set", "RandomState"],
        instead: "use pds_det::{DetMap, DetSet, MapEntry} (or BTreeMap/BTreeSet for sorted order)",
        exempt_dirs: &[],
    },
    Rule {
        name: "wall-clock",
        tokens: &["Instant", "SystemTime", "UNIX_EPOCH"],
        instead: "use SimTime/SimDuration; benches go through pds_bench::metrics::WallClock",
        exempt_dirs: &[],
    },
    Rule {
        name: "entropy-rng",
        tokens: &["thread_rng", "from_entropy", "OsRng", "getrandom"],
        instead: "derive all randomness from the run seed via pds_sim::SimRng",
        exempt_dirs: &[],
    },
    Rule {
        name: "thread-pool",
        tokens: &["thread", "rayon", "ThreadPool"],
        instead: "no threads inside the simulation; parallelize over whole runs via \
                  pds_bench::sweep (crates/bench is the one exempt layer)",
        exempt_dirs: &["bench"],
    },
];

/// Workspace-relative directories the lint walks.
pub const SCAN_ROOTS: &[&str] = &[
    "crates/sim",
    "crates/core",
    "crates/mobility",
    "crates/bloom",
    "crates/bench",
    "crates/obs",
    "crates/dst",
    "tests",
];

/// One rule violation at a source location.
#[derive(Debug, PartialEq, Eq)]
pub struct Finding {
    /// File containing the violation.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Violated rule name.
    pub rule: &'static str,
    /// The offending token.
    pub token: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let instead = RULES
            .iter()
            .find(|r| r.name == self.rule)
            .map_or("", |r| r.instead);
        write!(
            f,
            "{}:{}: [{}] forbidden token `{}` — {}",
            self.file.display(),
            self.line,
            self.rule,
            self.token,
            instead
        )
    }
}

/// A file-level pragma exemption, echoed as part of the audited list.
#[derive(Debug, PartialEq, Eq)]
pub struct Exemption {
    /// File carrying the pragma.
    pub file: PathBuf,
    /// Rule the pragma allows.
    pub rule: String,
    /// The justification after `--`.
    pub reason: String,
}

/// Result of linting a tree: violations plus the audited exemption list.
#[derive(Debug, Default)]
pub struct Report {
    /// All rule violations found.
    pub findings: Vec<Finding>,
    /// All pragma exemptions encountered.
    pub exemptions: Vec<Exemption>,
}

/// Lints every `.rs` file under `root`'s [`SCAN_ROOTS`].
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let mut report = Report::default();
    for dir in SCAN_ROOTS {
        let dir = root.join(dir);
        if dir.is_dir() {
            lint_tree(&dir, &mut report)?;
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

/// Recursively lints every `.rs` file under `dir` into `report`.
pub fn lint_tree(dir: &Path, report: &mut Report) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            lint_tree(&path, report)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let text = std::fs::read_to_string(&path)?;
            lint_source(&path, &text, report);
        }
    }
    Ok(())
}

/// Lints a single source text into `report`.
pub fn lint_source(path: &Path, text: &str, report: &mut Report) {
    let allowed = collect_pragmas(path, text, report);
    let stripped = strip_comments_and_strings(text);
    let gated = prof_gated_regions(text, &stripped);
    for (pos, token) in word_tokens(&stripped) {
        let Some(rule) = RULES.iter().find(|r| r.tokens.contains(&token)) else {
            continue;
        };
        if allowed.iter().any(|a| a == rule.name) {
            continue;
        }
        if rule
            .exempt_dirs
            .iter()
            .any(|d| path.components().any(|c| c.as_os_str() == *d))
        {
            continue;
        }
        if gated.iter().any(|&(lo, hi)| pos >= lo && pos < hi) {
            continue;
        }
        report.findings.push(Finding {
            file: path.to_path_buf(),
            line: line_of(text, pos),
            rule: rule.name,
            token: token.to_string(),
        });
    }
}

/// Parses `// det-lint: allow(<rule>) -- <reason>` pragmas, recording them
/// as audited exemptions; returns the allowed rule names.
fn collect_pragmas(path: &Path, text: &str, report: &mut Report) -> Vec<String> {
    const TAG: &str = "// det-lint: allow(";
    let mut allowed = Vec::new();
    for line in text.lines() {
        let Some(rest) = line.trim_start().strip_prefix(TAG) else {
            continue;
        };
        let Some((rule, after)) = rest.split_once(')') else {
            continue;
        };
        // A pragma without a justification does not count.
        let Some(reason) = after.trim_start().strip_prefix("--") else {
            continue;
        };
        allowed.push(rule.to_string());
        report.exemptions.push(Exemption {
            file: path.to_path_buf(),
            rule: rule.to_string(),
            reason: reason.trim().to_string(),
        });
    }
    allowed
}

/// Blanks comment bodies and string/char literal contents with spaces,
/// preserving every byte position and all newlines (so offsets and line
/// numbers computed on the result are valid for the original).
fn strip_comments_and_strings(text: &str) -> String {
    #[derive(PartialEq)]
    enum Mode {
        Code,
        Line,
        Block(u32),
        Str,
        RawStr(usize),
        Char,
    }
    let bytes = text.as_bytes();
    let mut out = bytes.to_vec();
    let mut mode = Mode::Code;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        let next = bytes.get(i + 1).copied();
        match mode {
            Mode::Code => match (b, next) {
                (b'/', Some(b'/')) => {
                    mode = Mode::Line;
                    out[i] = b' ';
                    out[i + 1] = b' ';
                    i += 1;
                }
                (b'/', Some(b'*')) => {
                    mode = Mode::Block(1);
                    out[i] = b' ';
                    out[i + 1] = b' ';
                    i += 1;
                }
                (b'"', _) => mode = Mode::Str,
                (b'r', Some(b'"' | b'#')) | (b'b', Some(b'r')) => {
                    // Raw string: count the hashes after the leading r.
                    let start = if b == b'b' { i + 2 } else { i + 1 };
                    let mut hashes = 0;
                    while bytes.get(start + hashes) == Some(&b'#') {
                        hashes += 1;
                    }
                    if bytes.get(start + hashes) == Some(&b'"') {
                        mode = Mode::RawStr(hashes);
                        i = start + hashes;
                    }
                }
                // A lifetime ('a) is an identifier char after the quote
                // and no closing quote right behind it; treat a quote as
                // a char literal only when it closes within 3 bytes or
                // opens an escape.
                (b'\'', Some(n))
                    if n == b'\\'
                        || bytes.get(i + 2) == Some(&b'\'')
                        || (n.is_ascii()
                            && bytes.get(i + 3) == Some(&b'\'')
                            && next != Some(b'\'')) =>
                {
                    mode = Mode::Char;
                }
                _ => {}
            },
            Mode::Line => {
                if b == b'\n' {
                    mode = Mode::Code;
                } else {
                    out[i] = b' ';
                }
            }
            Mode::Block(depth) => {
                if b == b'\n' {
                    // keep newlines
                } else {
                    out[i] = b' ';
                }
                if b == b'/' && next == Some(b'*') {
                    mode = Mode::Block(depth + 1);
                    out[i + 1] = b' ';
                    i += 1;
                } else if b == b'*' && next == Some(b'/') {
                    out[i + 1] = b' ';
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::Block(depth - 1)
                    };
                    i += 1;
                }
            }
            Mode::Str => match (b, next) {
                (b'\\', Some(_)) => {
                    out[i] = b' ';
                    out[i + 1] = b' ';
                    i += 1;
                }
                (b'"', _) => mode = Mode::Code,
                (b'\n', _) => {}
                _ => out[i] = b' ',
            },
            Mode::RawStr(hashes) => {
                if b == b'"' && bytes[i + 1..].iter().take(hashes).all(|&c| c == b'#') {
                    mode = Mode::Code;
                    i += hashes;
                } else if b != b'\n' {
                    out[i] = b' ';
                }
            }
            Mode::Char => match (b, next) {
                (b'\\', Some(_)) => {
                    out[i] = b' ';
                    out[i + 1] = b' ';
                    i += 1;
                }
                (b'\'', _) => mode = Mode::Code,
                _ => out[i] = b' ',
            },
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Byte ranges (over the original text) gated by `#[cfg(feature = "prof")]`:
/// the attribute plus the item or statement it applies to. Code compiled
/// only under `prof` never runs in a replay build, so it is exempt.
///
/// `stripped` must be the same text with comments/strings blanked; it is
/// used for the balanced-delimiter scan so braces inside literals don't
/// derail it.
fn prof_gated_regions(text: &str, stripped: &str) -> Vec<(usize, usize)> {
    const ATTR: &str = "#[cfg(feature = \"prof\")]";
    let mut regions = Vec::new();
    let mut from = 0;
    while let Some(off) = text[from..].find(ATTR) {
        let start = from + off;
        let mut i = start + ATTR.len();
        let bytes = stripped.as_bytes();
        // Skip whitespace and any further attributes between the cfg and
        // the thing it gates.
        loop {
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            if bytes.get(i) == Some(&b'#') && bytes.get(i + 1) == Some(&b'[') {
                while i < bytes.len() && bytes[i] != b']' {
                    i += 1;
                }
                i += 1;
            } else {
                break;
            }
        }
        // The gated item/statement ends at the first `;` at depth 0, or —
        // once a brace block has opened — where depth returns to 0.
        let mut depth = 0i32;
        let mut opened = false;
        while i < bytes.len() {
            match bytes[i] {
                b'{' | b'(' | b'[' => {
                    depth += 1;
                    opened = opened || bytes[i] == b'{';
                }
                b'}' | b')' | b']' => {
                    depth -= 1;
                    if depth == 0 && opened && bytes[i] == b'}' {
                        i += 1;
                        break;
                    }
                }
                b';' if depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        regions.push((start, i));
        from = i.max(start + ATTR.len());
    }
    regions
}

/// Iterates `(byte_offset, token)` over maximal identifier-like runs.
fn word_tokens(stripped: &str) -> impl Iterator<Item = (usize, &str)> {
    let bytes = stripped.as_bytes();
    let is_word = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut i = 0;
    std::iter::from_fn(move || {
        while i < bytes.len() && !is_word(bytes[i]) {
            i += 1;
        }
        if i >= bytes.len() {
            return None;
        }
        let start = i;
        while i < bytes.len() && is_word(bytes[i]) {
            i += 1;
        }
        Some((start, &stripped[start..i]))
    })
}

/// 1-based line number of byte offset `pos` in `text`.
fn line_of(text: &str, pos: usize) -> usize {
    text.as_bytes()[..pos]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
        + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture(name: &str) -> (PathBuf, String) {
        let path = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("fixtures")
            .join(name);
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name}: {e}"));
        (path, text)
    }

    fn lint_fixture(name: &str) -> Report {
        let (path, text) = fixture(name);
        let mut report = Report::default();
        lint_source(&path, &text, &mut report);
        report
    }

    #[test]
    fn rejects_std_hashmap_in_sim_code() {
        let report = lint_fixture("reject/std_hashmap_in_sim.rs");
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.rule == "std-collections" && f.token == "HashMap"),
            "expected a std-collections finding, got {:?}",
            report.findings
        );
    }

    #[test]
    fn rejects_thread_rng_in_core_code() {
        let report = lint_fixture("reject/thread_rng_in_core.rs");
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.rule == "entropy-rng" && f.token == "thread_rng"),
            "expected an entropy-rng finding, got {:?}",
            report.findings
        );
    }

    #[test]
    fn rejects_threads_in_sim_code() {
        let report = lint_fixture("reject/thread_in_sim.rs");
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.rule == "thread-pool" && f.token == "thread"),
            "expected a thread-pool finding, got {:?}",
            report.findings
        );
    }

    #[test]
    fn accepts_threads_under_bench_dir() {
        let report = lint_fixture("accept/bench/pool.rs");
        assert!(
            report.findings.is_empty(),
            "crates/bench may use thread pools, got {:?}",
            report.findings
        );
    }

    #[test]
    fn rejects_bare_wall_clock() {
        let report = lint_fixture("reject/bare_instant.rs");
        let lines: Vec<usize> = report
            .findings
            .iter()
            .filter(|f| f.rule == "wall-clock")
            .map(|f| f.line)
            .collect();
        assert!(!lines.is_empty(), "expected wall-clock findings");
        // Line numbers must point at the real occurrences (import + call),
        // not at comment mentions.
        assert_eq!(lines, vec![6, 9]);
    }

    #[test]
    fn accepts_prof_gated_instant() {
        let report = lint_fixture("accept/prof_gated_instant.rs");
        assert!(
            report.findings.is_empty(),
            "prof-gated code must be exempt, got {:?}",
            report.findings
        );
    }

    #[test]
    fn accepts_pragma_exempted_bench_helper() {
        let report = lint_fixture("accept/bench_timing_helper.rs");
        assert!(
            report.findings.is_empty(),
            "pragma-exempted file must pass, got {:?}",
            report.findings
        );
        assert_eq!(report.exemptions.len(), 1);
        assert_eq!(report.exemptions[0].rule, "wall-clock");
        assert!(!report.exemptions[0].reason.is_empty());
    }

    #[test]
    fn accepts_det_collections_and_comment_mentions() {
        let report = lint_fixture("accept/det_collections.rs");
        assert!(
            report.findings.is_empty(),
            "DetMap code (and HashMap in comments/strings) must pass, got {:?}",
            report.findings
        );
    }

    #[test]
    fn pragma_without_reason_does_not_exempt() {
        let mut report = Report::default();
        lint_source(
            Path::new("x.rs"),
            "// det-lint: allow(wall-clock)\nuse std::time::Instant;\n",
            &mut report,
        );
        assert_eq!(
            report.findings.len(),
            1,
            "reason-less pragma must not count"
        );
        assert!(report.exemptions.is_empty());
    }

    #[test]
    fn pragma_only_exempts_named_rule() {
        let mut report = Report::default();
        lint_source(
            Path::new("x.rs"),
            "// det-lint: allow(wall-clock) -- profiling\n\
             use std::time::Instant;\n\
             use std::collections::HashMap;\n",
            &mut report,
        );
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, "std-collections");
    }

    #[test]
    fn scheduler_module_is_scanned_and_lints_clean() {
        // The timer wheel (DESIGN.md §11) sits on the kernel's hottest
        // path; pin that it lives under a scanned root (so `cargo xtask
        // lint-determinism` covers it — no wall-clock, no std hash
        // collections, no entropy RNGs) and that the real file is clean.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let wheel = root.join("crates/sim/src/wheel.rs");
        assert!(
            SCAN_ROOTS.iter().any(|r| wheel.starts_with(root.join(r))),
            "crates/sim/src/wheel.rs must be under a SCAN_ROOTS entry"
        );
        let text = std::fs::read_to_string(&wheel)
            .unwrap_or_else(|e| panic!("wheel.rs must exist at the linted path: {e}"));
        let mut report = Report::default();
        lint_source(&wheel, &text, &mut report);
        assert!(
            report.findings.is_empty(),
            "the scheduler module must be determinism-clean, got {:?}",
            report.findings
        );
        assert!(
            report.exemptions.is_empty(),
            "the scheduler module must not need pragma exemptions"
        );
    }

    #[test]
    fn dst_crate_is_scanned_and_lints_clean() {
        // The DST harness replays (seed, fault-plan) pairs and minimizes
        // failures — it is only trustworthy if it is itself deterministic.
        // Pin that crates/dst sits under a scanned root and that its sweep
        // driver is clean: parallelism must come from pds_bench::sweep
        // (the one exempt layer), never from threads of its own.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let harness = root.join("crates/dst/src/harness.rs");
        assert!(
            SCAN_ROOTS.iter().any(|r| harness.starts_with(root.join(r))),
            "crates/dst/src/harness.rs must be under a SCAN_ROOTS entry"
        );
        let text = std::fs::read_to_string(&harness)
            .unwrap_or_else(|e| panic!("harness.rs must exist at the linted path: {e}"));
        let mut report = Report::default();
        lint_source(&harness, &text, &mut report);
        assert!(
            report.findings.is_empty(),
            "the DST harness must be determinism-clean, got {:?}",
            report.findings
        );
        assert!(
            report.exemptions.is_empty(),
            "the DST harness must not need pragma exemptions"
        );
    }

    #[test]
    fn rejects_threads_in_dst_code() {
        let report = lint_fixture("reject/thread_in_dst.rs");
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.rule == "thread-pool" && f.token == "thread"),
            "the dst tree must not be thread-exempt, got {:?}",
            report.findings
        );
    }

    #[test]
    fn strip_preserves_positions_and_newlines() {
        let text = "let a = \"HashMap\"; // HashMap\nlet b = 1; /* HashSet */\n";
        let stripped = strip_comments_and_strings(text);
        assert_eq!(stripped.len(), text.len());
        assert_eq!(stripped.matches('\n').count(), text.matches('\n').count());
        assert!(!stripped.contains("HashMap"));
        assert!(!stripped.contains("HashSet"));
        assert!(stripped.contains("let a"));
        assert!(stripped.contains("let b"));
    }

    #[test]
    fn prof_gate_covers_statement_and_item() {
        let text = "#[cfg(feature = \"prof\")]\nlet t = Instant::now();\nlet x = 1;\n";
        let stripped = strip_comments_and_strings(text);
        let regions = prof_gated_regions(text, &stripped);
        assert_eq!(regions.len(), 1);
        let inst = text.find("Instant").unwrap();
        assert!(regions[0].0 < inst && inst < regions[0].1);
        let x = text.find("let x").unwrap();
        assert!(x >= regions[0].1, "gate must not swallow following code");

        let item = "#[cfg(feature = \"prof\")]\nfn p() { let t = Instant::now(); }\nfn q() { let u = Instant::now(); }\n";
        let s2 = strip_comments_and_strings(item);
        let r2 = prof_gated_regions(item, &s2);
        assert_eq!(r2.len(), 1);
        let second = item.rfind("Instant").unwrap();
        assert!(second >= r2[0].1, "only the gated fn is exempt");
    }
}
