//! Workspace automation tasks, invoked as `cargo xtask <task>` (see
//! `.cargo/config.toml` for the alias).
//!
//! The one task so far is `lint-determinism`, the static pass enforcing
//! the determinism contract of DESIGN.md §8 over the simulation crates.

mod lint;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint-determinism") => {
            let root = match args.next().as_deref() {
                Some("--root") => match args.next() {
                    Some(r) => PathBuf::from(r),
                    None => {
                        eprintln!("--root requires a path");
                        return ExitCode::FAILURE;
                    }
                },
                Some(other) => {
                    eprintln!("unknown argument `{other}`");
                    return ExitCode::FAILURE;
                }
                None => workspace_root(),
            };
            lint_determinism(&root)
        }
        Some(other) => {
            eprintln!("unknown task `{other}`");
            usage();
            ExitCode::FAILURE
        }
        None => {
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!("usage: cargo xtask lint-determinism [--root <workspace>]");
}

/// The workspace root is two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives at <root>/crates/xtask")
        .to_path_buf()
}

fn lint_determinism(root: &Path) -> ExitCode {
    let report = match lint::lint_workspace(root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint-determinism: I/O error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !report.exemptions.is_empty() {
        println!("audited exemptions ({}):", report.exemptions.len());
        for e in &report.exemptions {
            let file = e.file.strip_prefix(root).unwrap_or(&e.file);
            println!("  {}: allow({}) -- {}", file.display(), e.rule, e.reason);
        }
    }
    if report.findings.is_empty() {
        println!("lint-determinism: clean");
        ExitCode::SUCCESS
    } else {
        for f in &report.findings {
            let file = f.file.strip_prefix(root).unwrap_or(&f.file);
            println!(
                "{}",
                lint::Finding {
                    file: file.to_path_buf(),
                    line: f.line,
                    rule: f.rule,
                    token: f.token.clone(),
                }
            );
        }
        eprintln!(
            "lint-determinism: {} violation(s); see DESIGN.md §8 for the contract",
            report.findings.len()
        );
        ExitCode::FAILURE
    }
}
