//! Workspace automation tasks, invoked as `cargo xtask <task>` (see
//! `.cargo/config.toml` for the alias).
//!
//! The main task is `lint`: the AST-grade static-analysis pass
//! (`pds-lint`) enforcing the determinism contract (DESIGN.md §8), the
//! sans-io purity of the protocol crates, panic-freedom on the hot
//! dispatch path, the crate-layering DAG, the unsafe audit, and the
//! exemption ratchet (DESIGN.md §13). `lint-determinism` is kept as an
//! alias for older CI configs and muscle memory.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint" | "lint-determinism") => {
            let mut root = None;
            let mut json = false;
            let mut update_exemptions = false;
            loop {
                match args.next().as_deref() {
                    Some("--root") => match args.next() {
                        Some(r) => root = Some(PathBuf::from(r)),
                        None => {
                            eprintln!("--root requires a path");
                            return ExitCode::FAILURE;
                        }
                    },
                    Some("--json") => json = true,
                    Some("--update-exemptions") => update_exemptions = true,
                    Some(other) => {
                        eprintln!("unknown argument `{other}`");
                        usage();
                        return ExitCode::FAILURE;
                    }
                    None => break,
                }
            }
            lint(
                &root.unwrap_or_else(workspace_root),
                json,
                update_exemptions,
            )
        }
        Some(other) => {
            eprintln!("unknown task `{other}`");
            usage();
            ExitCode::FAILURE
        }
        None => {
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!("usage: cargo xtask lint [--json] [--update-exemptions] [--root <workspace>]");
}

/// The workspace root is two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives at <root>/crates/xtask")
        .to_path_buf()
}

fn lint(root: &Path, json: bool, update_exemptions: bool) -> ExitCode {
    let report = match pds_lint::run(root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: I/O error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let ratchet_ok = if update_exemptions {
        if let Err(e) = pds_lint::ratchet::update(root, &report) {
            eprintln!("lint: failed to write {}: {e}", pds_lint::EXEMPTIONS_FILE);
            return ExitCode::FAILURE;
        }
        eprintln!(
            "lint: wrote {} ({} exemption(s))",
            pds_lint::EXEMPTIONS_FILE,
            report.inventory().len()
        );
        true
    } else {
        match pds_lint::ratchet::check(root, &report) {
            Ok(pds_lint::RatchetStatus::Match) => true,
            Ok(pds_lint::RatchetStatus::Mismatch { missing, extra }) => {
                for line in &missing {
                    eprintln!("ratchet: new exemption not pinned: {line}");
                }
                for line in &extra {
                    eprintln!("ratchet: pinned but no longer produced: {line}");
                }
                eprintln!(
                    "ratchet: {} differs from the run's inventory; \
                     review, then `cargo xtask lint --update-exemptions`",
                    pds_lint::EXEMPTIONS_FILE
                );
                false
            }
            Err(e) => {
                eprintln!("lint: failed to read {}: {e}", pds_lint::EXEMPTIONS_FILE);
                return ExitCode::FAILURE;
            }
        }
    };

    if json {
        print!("{}", report.to_json());
    } else {
        for d in &report.findings {
            println!("{d}");
        }
        if !report.exemptions.is_empty() {
            println!("audited exemptions ({}):", report.inventory().len());
            for line in report.inventory() {
                println!("  {line}");
            }
        }
        let warnings = report.findings.len() - report.error_count();
        println!(
            "lint: {} file(s), {} error(s), {} warning(s), {} exemption(s)",
            report.files_checked,
            report.error_count(),
            warnings,
            report.inventory().len()
        );
    }

    if report.is_clean() && ratchet_ok {
        ExitCode::SUCCESS
    } else {
        if !report.is_clean() {
            eprintln!(
                "lint: {} violation(s); see DESIGN.md §13 for the contract",
                report.error_count()
            );
        }
        ExitCode::FAILURE
    }
}
