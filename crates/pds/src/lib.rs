//! Umbrella crate for the PDS reproduction: one dependency that pulls in
//! the protocol ([`core`]), the wireless simulator substrate ([`sim`]), the
//! mobility tooling ([`mobility`]), Bloom filters ([`bloom`]) and the
//! experiment harness ([`mod@bench`]).
//!
//! The runnable examples in `/examples` are built against this crate:
//!
//! * `quickstart` — two devices, one metadata discovery.
//! * `air_quality` — a crowdsensing field of NO₂ samples: filtered
//!   discovery plus small-data retrieval.
//! * `festival_video` — a 6 MB video clip retrieved chunk-by-chunk across
//!   a grid of festival-goers (PDR), compared with the MDR baseline.
//! * `mobile_campus` — discovery while people join, leave and wander a
//!   student center.
//! * `trace` — records a discovery + retrieval run as a JSONL trace and
//!   walks through it with the [`mod@obs`] analysis toolkit (per-phase
//!   overhead, delay CDF, event census).
//!
//! ```
//! use pds::core::{PdsConfig, PdsNode, QueryFilter};
//! use pds::sim::{Position, SimConfig, SimTime, World};
//!
//! let mut world = World::new(SimConfig::default(), 1);
//! let producer = PdsNode::new(PdsConfig::default(), 1).with_metadata(
//!     pds::core::DataDescriptor::builder().attr("type", "photo").build(),
//!     None,
//! );
//! world.add_node(Position::new(0.0, 0.0), Box::new(producer));
//! let consumer = world.add_node(
//!     Position::new(40.0, 0.0),
//!     Box::new(PdsNode::new(PdsConfig::default(), 2)),
//! );
//! world.with_app::<PdsNode, _>(consumer, |n, ctx| {
//!     n.start_discovery(ctx, QueryFilter::match_all());
//! });
//! world.run_until(SimTime::from_secs_f64(10.0));
//! assert_eq!(
//!     world.app::<PdsNode>(consumer).unwrap().discovery_report().unwrap().entries,
//!     1
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pds_bench as bench;
pub use pds_bloom as bloom;
pub use pds_core as core;
pub use pds_mobility as mobility;
pub use pds_obs as obs;
pub use pds_sim as sim;
