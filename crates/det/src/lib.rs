//! Deterministic collections for the PDS workspace.
//!
//! The simulator's headline guarantee is that identical (config, seed,
//! scenario) triples replay **bit-identically** — across processes, across
//! machines, and across the grid/brute-force spatial index choice. Std's
//! `HashMap`/`HashSet` break that discipline in two ways:
//!
//! 1. **Randomized hashing.** `RandomState` seeds SipHash from OS entropy
//!    per process, so iteration order differs between two runs of the same
//!    binary. Any iteration that feeds event ordering, rng consumption, or
//!    floating-point accumulation order silently destroys replay equality.
//! 2. **HashDoS resistance nobody needs.** Keys here are simulated ids and
//!    grid cells, not attacker-controlled input; SipHash's per-lookup cost
//!    shows up directly in the event-loop profile.
//!
//! [`DetMap`]/[`DetSet`] replace both uses: a fixed-seed multiply-xor
//! hasher ([`DetHasher`]) makes iteration order a pure function of the
//! insert/remove history — the same in every process, every run. Where
//! code additionally needs an order that is independent of *insertion
//! history* (e.g. wire-visible lists), [`SortedIterExt::iter_sorted`]
//! provides key-ascending iteration, or use `BTreeMap` directly.
//!
//! `cargo xtask lint` statically rejects std `HashMap`/
//! `HashSet` in the simulation crates; this crate is the single audited
//! place that touches them.
//!
//! # Examples
//!
//! ```
//! use pds_det::{DetMap, SortedIterExt};
//!
//! let mut m: DetMap<u32, &str> = DetMap::default();
//! m.insert(2, "b");
//! m.insert(1, "a");
//! let sorted: Vec<_> = m.iter_sorted().map(|(k, v)| (*k, *v)).collect();
//! assert_eq!(sorted, vec![(1, "a"), (2, "b")]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The whole point of this crate is to wrap the std hash collections behind
// a deterministic hasher; it is the one audited exemption from the
// workspace-wide `disallowed-types` clippy config.
#![allow(clippy::disallowed_types)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Fixed-seed multiply-xor hasher for the small keys used across the
/// workspace (node/chunk/query ids, grid cells, entry keys).
///
/// Identical input bytes hash identically in every process — there is no
/// per-process random state — which is what makes [`DetMap`] iteration
/// order replay-stable. Quality is FNV/Fibonacci-grade: plenty for
/// simulated-id keys, and substantially cheaper per probe than SipHash on
/// the radio hot paths (dozens of map probes per simulation event).
#[derive(Clone, Copy, Default)]
pub struct DetHasher(u64);

impl Hasher for DetHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
    }
    fn write_u32(&mut self, n: u32) {
        self.write_u64(u64::from(n));
    }
    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 ^= self.0 >> 29;
    }
    fn write_i64(&mut self, n: i64) {
        self.write_u64(n as u64);
    }
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

/// Zero-sized, entropy-free `BuildHasher` producing [`DetHasher`]s.
pub type DetState = BuildHasherDefault<DetHasher>;

/// A `HashMap` with deterministic, replay-stable iteration order.
///
/// Iteration order is a pure function of the sequence of inserts and
/// removes — identical across processes and machines for the same history.
/// It is *not* sorted and *not* insertion-order; callers that need an
/// order independent of history use [`SortedIterExt::iter_sorted`].
///
/// Construct with `DetMap::default()` (std's `new()` is only defined for
/// `RandomState`) or collect from an iterator.
pub type DetMap<K, V> = HashMap<K, V, DetState>;

/// A `HashSet` with deterministic, replay-stable iteration order.
///
/// Same contract as [`DetMap`]; construct with `DetSet::default()`.
pub type DetSet<T> = HashSet<T, DetState>;

/// Re-export of the hash-map entry API so migrated code never names
/// `std::collections::hash_map` (which the determinism lint rejects).
pub use std::collections::hash_map::Entry as MapEntry;

/// Creates an empty [`DetMap`] with room for `n` entries.
#[must_use]
pub fn map_with_capacity<K, V>(n: usize) -> DetMap<K, V> {
    DetMap::with_capacity_and_hasher(n, DetState::default())
}

/// Creates an empty [`DetSet`] with room for `n` items.
#[must_use]
pub fn set_with_capacity<T>(n: usize) -> DetSet<T> {
    DetSet::with_capacity_and_hasher(n, DetState::default())
}

/// Key-ascending iteration over the deterministic collections, for the
/// places where order must not depend on insertion history at all (wire
/// formats, user-visible listings, f64 accumulation).
pub trait SortedIterExt {
    /// The `(key, value)` — or plain item — type yielded.
    type Item;
    /// Iterates entries ascending by key, independent of insertion order.
    fn iter_sorted(self) -> std::vec::IntoIter<Self::Item>;
}

impl<'a, K: Ord, V> SortedIterExt for &'a DetMap<K, V> {
    type Item = (&'a K, &'a V);
    fn iter_sorted(self) -> std::vec::IntoIter<Self::Item> {
        let mut v: Vec<_> = self.iter().collect();
        v.sort_unstable_by(|a, b| a.0.cmp(b.0));
        v.into_iter()
    }
}

impl<'a, T: Ord> SortedIterExt for &'a DetSet<T> {
    type Item = &'a T;
    fn iter_sorted(self) -> std::vec::IntoIter<Self::Item> {
        let mut v: Vec<_> = self.iter().collect();
        v.sort_unstable();
        v.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_basics_and_entry_api() {
        let mut m: DetMap<u64, u64> = DetMap::default();
        assert!(m.insert(1, 10).is_none());
        match m.entry(2) {
            MapEntry::Vacant(v) => {
                v.insert(20);
            }
            MapEntry::Occupied(_) => panic!("fresh key"),
        }
        *m.entry(1).or_insert(0) += 5;
        assert_eq!(m.get(&1), Some(&15));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn collect_uses_det_state() {
        let m: DetMap<u32, u32> = (0..10).map(|i| (i, i * i)).collect();
        assert_eq!(m.get(&3), Some(&9));
        let s: DetSet<u32> = (0..10).collect();
        assert!(s.contains(&7));
    }

    #[test]
    fn iter_sorted_is_key_ascending() {
        let mut m: DetMap<i32, &str> = DetMap::default();
        for k in [5, -1, 3, 0] {
            m.insert(k, "x");
        }
        let keys: Vec<i32> = m.iter_sorted().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![-1, 0, 3, 5]);
        let mut s: DetSet<&str> = DetSet::default();
        s.extend(["pear", "apple", "fig"]);
        let items: Vec<&str> = s.iter_sorted().copied().collect();
        assert_eq!(items, vec!["apple", "fig", "pear"]);
    }

    #[test]
    fn with_capacity_helpers() {
        let mut m = map_with_capacity::<u8, u8>(32);
        assert!(m.capacity() >= 32);
        m.insert(1, 1);
        let mut s = set_with_capacity::<u8>(32);
        assert!(s.capacity() >= 32);
        s.insert(1);
    }

    #[test]
    fn hasher_is_entropy_free() {
        // Two independently constructed states hash identically — the
        // property RandomState lacks.
        let hash = |k: u64| {
            use std::hash::BuildHasher;
            DetState::default().hash_one(k)
        };
        assert_eq!(hash(0xdead_beef), hash(0xdead_beef));
        assert_ne!(hash(1), hash(2));
    }
}
