//! Property and cross-process tests of the deterministic collections'
//! replay-stability contract (DESIGN.md §8).

use pds_det::{DetMap, DetSet, SortedIterExt};
use proptest::prelude::*;

/// FNV-1a over an iteration order: two equal digests mean the sequences
/// were element-for-element identical.
fn order_digest(order: impl Iterator<Item = (u64, u64)>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for (k, v) in order {
        fold(k);
        fold(v);
    }
    h
}

proptest! {
    /// Same insert/remove history ⇒ identical iteration order, every time.
    #[test]
    fn same_history_same_iteration_order(
        keys in proptest::collection::vec(any::<u64>(), 0..128),
        removes in proptest::collection::vec(any::<u64>(), 0..32),
    ) {
        let build = || {
            let mut m: DetMap<u64, u64> = DetMap::default();
            for &k in &keys {
                m.insert(k, k.wrapping_mul(3));
            }
            for r in &removes {
                m.remove(&(r % 257));
            }
            m
        };
        let a = build();
        let b = build();
        let oa: Vec<(u64, u64)> = a.iter().map(|(&k, &v)| (k, v)).collect();
        let ob: Vec<(u64, u64)> = b.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(oa, ob);
    }

    /// `iter_sorted` yields the same sequence regardless of insertion
    /// order — the claim wire-visible listings rely on.
    #[test]
    fn sorted_iteration_is_insertion_independent(
        keys in proptest::collection::vec(any::<u64>(), 0..128),
    ) {
        let mut fwd: DetMap<u64, u64> = DetMap::default();
        for &k in &keys {
            fwd.insert(k, k ^ 0xff);
        }
        let mut rev: DetMap<u64, u64> = DetMap::default();
        for &k in keys.iter().rev() {
            rev.insert(k, k ^ 0xff);
        }
        let a: Vec<_> = fwd.iter_sorted().map(|(&k, &v)| (k, v)).collect();
        let b: Vec<_> = rev.iter_sorted().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        prop_assert_eq!(a, sorted, "iter_sorted must ascend by key");
    }

    /// Set iteration is equally history-determined.
    #[test]
    fn set_iteration_is_history_determined(
        items in proptest::collection::vec(any::<u64>(), 0..128),
    ) {
        let build = || {
            let mut s: DetSet<u64> = DetSet::default();
            s.extend(items.iter().copied());
            s
        };
        let a: Vec<u64> = build().iter().copied().collect();
        let b: Vec<u64> = build().iter().copied().collect();
        prop_assert_eq!(a, b);
    }
}

/// The cross-process half of the contract: a fresh OS process (fresh ASLR,
/// fresh would-be `RandomState` entropy) iterates a `DetMap` in exactly
/// the same order. The test re-executes its own binary twice, has each
/// child build the same map and print an order digest, and compares.
/// A std `HashMap` in place of `DetMap` fails this test.
#[test]
fn iteration_order_identical_across_processes() {
    const CHILD_ENV: &str = "PDS_DET_ORDER_CHILD";
    let digest = || {
        let mut m: DetMap<u64, u64> = DetMap::default();
        for i in 0..2048u64 {
            m.insert(i.wrapping_mul(0x9e37_79b9_7f4a_7c15), i);
        }
        for i in 0..512u64 {
            m.remove(&(i.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
        }
        order_digest(m.iter().map(|(&k, &v)| (k, v)))
    };
    if std::env::var(CHILD_ENV).is_ok() {
        // Child mode: report the digest through stdout and stop.
        println!("det-order-digest={:016x}", digest());
        return;
    }
    let exe = std::env::current_exe().expect("test binary path");
    let spawn = || {
        let out = std::process::Command::new(&exe)
            .args([
                "--exact",
                "iteration_order_identical_across_processes",
                "--nocapture",
            ])
            .env(CHILD_ENV, "1")
            .output()
            .expect("re-exec test binary");
        assert!(out.status.success(), "child test run failed: {out:?}");
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        // libtest may glue the child's print onto its own "test ..." line,
        // so match by substring rather than line prefix.
        let hex = stdout
            .split("det-order-digest=")
            .nth(1)
            .map(|rest| rest.chars().take(16).collect::<String>())
            .unwrap_or_else(|| panic!("no digest line in child output:\n{stdout}"));
        u64::from_str_radix(&hex, 16).expect("hex digest")
    };
    let first = spawn();
    let second = spawn();
    assert_eq!(first, second, "iteration order differed between processes");
    assert_eq!(first, digest(), "parent order differs from children");
}
