//! Uniform spatial hash grids over node and transmission positions.
//!
//! Every frame delivery and [`World::neighbors`](crate::World::neighbors)
//! call needs "who is within `r` meters of here?". Scanning all nodes makes
//! dense scenarios O(n²)–O(n³); bucketing positions into square cells of
//! roughly one radio range turns each range query into a 3×3 cell probe.
//!
//! Two wrinkles distinguish this from a textbook grid:
//!
//! * **Positions are time-parameterized.** A node's [`Motion`] gives its
//!   position at any instant, so buckets go stale as virtual time advances.
//!   [`NodeGrid`] re-buckets *moving* nodes lazily — by default whenever the
//!   event clock advances, or on a configurable interval
//!   ([`SpatialConfig::rebucket_interval`](crate::SpatialConfig)) — and
//!   compensates for any staleness by **padding** query radii with
//!   `max_speed × time_since_rebucket`. Queries therefore always return a
//!   superset of the true in-range set; callers keep their exact distance
//!   check, which makes grid results *identical* to a brute-force scan.
//! * **Transmissions don't move.** A frame's delivery geometry is fixed at
//!   its start position, so [`TxGrid`] is a plain static-point index used by
//!   the CSMA carrier-sense scan.
//!
//! Both grids are cheap enough to maintain unconditionally; the
//! [`SpatialIndex`](crate::SpatialIndex) config knob only selects which
//! query path the kernel uses, which is what the differential property
//! tests exploit.

use crate::radio::{Motion, Position};
use pds_core::NodeId;
use pds_core::SimTime;
use pds_det::DetMap;

/// A grid cell coordinate (floor of position / cell size).
type Cell = (i64, i64);

pub(crate) fn cell_of(pos: Position, cell_m: f64) -> Cell {
    // `as` saturates on overflow, so absurd coordinates stay well-defined.
    (
        (pos.x / cell_m).floor() as i64,
        (pos.y / cell_m).floor() as i64,
    )
}

/// Spatial index over alive node positions.
///
/// Membership updates (add/move/remove) are applied eagerly; only the
/// drift of in-flight motions is compensated lazily (see module docs).
#[derive(Debug)]
pub(crate) struct NodeGrid {
    cell_m: f64,
    /// Each entry carries the node's motion, so range queries yield
    /// positions without a per-candidate lookup in the node table. The
    /// copy stays exact because every motion change re-upserts the node.
    cells: DetMap<Cell, Vec<(NodeId, Motion)>>,
    entries: DetMap<NodeId, Cell>,
    /// Nodes whose motion was still in progress at the last re-bucket (or
    /// that changed motion since), with their walking speeds.
    moving: DetMap<NodeId, f64>,
    /// Fastest walking speed among `moving` since the last re-bucket.
    max_speed: f64,
    /// Time at which every bucket was last known exact.
    stamp: SimTime,
}

impl NodeGrid {
    /// Creates an empty grid with the given cell edge in meters.
    ///
    /// # Panics
    ///
    /// Panics unless `cell_m` is positive and finite.
    pub fn new(cell_m: f64, now: SimTime) -> Self {
        assert!(
            cell_m.is_finite() && cell_m > 0.0,
            "spatial cell size must be positive"
        );
        Self {
            cell_m,
            cells: DetMap::default(),
            entries: DetMap::default(),
            moving: DetMap::default(),
            max_speed: 0.0,
            stamp: now,
        }
    }

    /// Time of the last re-bucket.
    pub fn stamp(&self) -> SimTime {
        self.stamp
    }

    /// Fastest walking speed among motions still in progress at the last
    /// re-bucket (an upper bound on every currently in-flight walker).
    /// The shard executor uses it to pad cache-invalidation distances.
    pub fn max_speed(&self) -> f64 {
        self.max_speed
    }

    fn unlink(&mut self, id: NodeId, cell: Cell) {
        if let Some(ids) = self.cells.get_mut(&cell) {
            if let Some(i) = ids.iter().position(|&(x, _)| x == id) {
                ids.swap_remove(i);
            }
            if ids.is_empty() {
                self.cells.remove(&cell);
            }
        }
    }

    /// Inserts `id` or moves it to the bucket matching `motion` at `now`,
    /// and tracks it as a drift source while its walk is in progress.
    pub fn upsert(&mut self, id: NodeId, motion: &Motion, now: SimTime) {
        let cell = cell_of(motion.position(now), self.cell_m);
        match self.entries.insert(id, cell) {
            Some(old) if old == cell => {
                if let Some(ids) = self.cells.get_mut(&cell) {
                    if let Some(e) = ids.iter_mut().find(|(x, _)| *x == id) {
                        e.1 = *motion;
                    }
                }
            }
            Some(old) => {
                self.unlink(id, old);
                self.cells.entry(cell).or_default().push((id, *motion));
            }
            None => self.cells.entry(cell).or_default().push((id, *motion)),
        }
        if motion.speed_mps > 0.0 && motion.arrival() > now {
            self.moving.insert(id, motion.speed_mps);
            self.max_speed = self.max_speed.max(motion.speed_mps);
        } else {
            self.moving.remove(&id);
        }
    }

    /// Removes `id` from the index (node churned out).
    pub fn remove(&mut self, id: NodeId) {
        if let Some(cell) = self.entries.remove(&id) {
            self.unlink(id, cell);
        }
        self.moving.remove(&id);
    }

    /// Re-buckets every moving node at `now` using `motion_of` to read its
    /// current motion, then resets the staleness clock. Nodes that arrived
    /// stop contributing drift.
    pub fn rebucket(&mut self, now: SimTime, motion_of: impl Fn(NodeId) -> Option<Motion>) {
        let ids: Vec<NodeId> = self.moving.keys().copied().collect();
        for id in ids {
            match motion_of(id) {
                Some(motion) => self.upsert(id, &motion, now),
                None => self.remove(id),
            }
        }
        self.max_speed = self.moving.values().copied().fold(0.0, f64::max);
        self.stamp = now;
    }

    /// Appends to `out` every node whose bucket lies within `radius` meters
    /// of `center` (padded for bucket staleness at `now`) — a superset of
    /// the nodes truly in range, for the caller to filter exactly.
    pub fn query_into(
        &self,
        center: Position,
        radius: f64,
        now: SimTime,
        out: &mut Vec<(NodeId, Motion)>,
    ) {
        let pad = self.max_speed * now.since(self.stamp).as_secs_f64();
        let reach = radius + pad;
        // Exact bounding box of the query disk in cell coordinates: any
        // entry within `reach` of `center` lies in one of these cells.
        let (x_lo, y_lo) = cell_of(
            Position::new(center.x - reach, center.y - reach),
            self.cell_m,
        );
        let (x_hi, y_hi) = cell_of(
            Position::new(center.x + reach, center.y + reach),
            self.cell_m,
        );
        // A pathological pad (huge rebucket interval × fast walkers) could
        // ask for far more cells than there are nodes; fall back to listing
        // everything rather than walking an enormous, mostly empty box.
        let probes = (x_hi - x_lo + 1) as f64 * (y_hi - y_lo + 1) as f64;
        if probes > 1024.0 && probes > self.entries.len() as f64 {
            for ids in self.cells.values() {
                out.extend_from_slice(ids);
            }
            return;
        }
        for cx in x_lo..=x_hi {
            for cy in y_lo..=y_hi {
                if let Some(ids) = self.cells.get(&(cx, cy)) {
                    out.extend_from_slice(ids);
                }
            }
        }
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// A transmission's delivery-relevant fields, denormalized into the grid
/// so carrier-sense and interference scans touch no other map.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TxEntry {
    pub id: u64,
    pub sender: NodeId,
    pub pos: Position,
    pub start: SimTime,
    pub end: SimTime,
}

/// Spatial index over in-flight (and recently finished) transmissions,
/// keyed by transmission id at the sender's start position. Transmissions
/// never move, so buckets are exact.
#[derive(Debug, Default)]
pub(crate) struct TxGrid {
    cell_m: f64,
    cells: DetMap<Cell, Vec<TxEntry>>,
    entries: DetMap<u64, Cell>,
}

impl TxGrid {
    /// Creates an empty grid with the given cell edge in meters.
    ///
    /// # Panics
    ///
    /// Panics unless `cell_m` is positive and finite.
    pub fn new(cell_m: f64) -> Self {
        assert!(
            cell_m.is_finite() && cell_m > 0.0,
            "spatial cell size must be positive"
        );
        Self {
            cell_m,
            cells: DetMap::default(),
            entries: DetMap::default(),
        }
    }

    /// Indexes a transmission at its start position.
    pub fn insert(&mut self, entry: TxEntry) {
        let cell = cell_of(entry.pos, self.cell_m);
        self.cells.entry(cell).or_default().push(entry);
        self.entries.insert(entry.id, cell);
    }

    /// Drops transmission `id` from the index.
    pub fn remove(&mut self, id: u64) {
        if let Some(cell) = self.entries.remove(&id) {
            if let Some(txs) = self.cells.get_mut(&cell) {
                if let Some(i) = txs.iter().position(|t| t.id == id) {
                    txs.swap_remove(i);
                }
                if txs.is_empty() {
                    self.cells.remove(&cell);
                }
            }
        }
    }

    /// Appends to `out` every transmission whose start cell lies within
    /// `radius` meters of `center` — a superset for exact filtering. Order
    /// is unspecified; callers needing a deterministic order sort by id.
    pub fn query_into(&self, center: Position, radius: f64, out: &mut Vec<TxEntry>) {
        let (x_lo, y_lo) = cell_of(
            Position::new(center.x - radius, center.y - radius),
            self.cell_m,
        );
        let (x_hi, y_hi) = cell_of(
            Position::new(center.x + radius, center.y + radius),
            self.cell_m,
        );
        let probes = (x_hi - x_lo + 1) as f64 * (y_hi - y_lo + 1) as f64;
        if probes > 1024.0 && probes > self.entries.len() as f64 {
            for txs in self.cells.values() {
                out.extend_from_slice(txs);
            }
            return;
        }
        for cx in x_lo..=x_hi {
            for cy in y_lo..=y_hi {
                if let Some(txs) = self.cells.get(&(cx, cy)) {
                    out.extend_from_slice(txs);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_core::SimDuration;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn stationary(x: f64, y: f64) -> Motion {
        Motion::stationary(Position::new(x, y), SimTime::ZERO)
    }

    fn ids(out: &[(NodeId, Motion)]) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = out.iter().map(|&(id, _)| id).collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn query_finds_only_nearby_cells() {
        let mut g = NodeGrid::new(75.0, SimTime::ZERO);
        g.upsert(NodeId(0), &stationary(0.0, 0.0), SimTime::ZERO);
        g.upsert(NodeId(1), &stationary(50.0, 0.0), SimTime::ZERO);
        g.upsert(NodeId(2), &stationary(400.0, 400.0), SimTime::ZERO);
        let mut out = Vec::new();
        g.query_into(Position::new(10.0, 0.0), 75.0, SimTime::ZERO, &mut out);
        assert_eq!(ids(&out), vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn upsert_relocates_and_remove_unlinks() {
        let mut g = NodeGrid::new(10.0, SimTime::ZERO);
        g.upsert(NodeId(7), &stationary(5.0, 5.0), SimTime::ZERO);
        g.upsert(NodeId(7), &stationary(95.0, 95.0), SimTime::ZERO);
        assert_eq!(g.len(), 1);
        let mut out = Vec::new();
        g.query_into(Position::new(5.0, 5.0), 10.0, SimTime::ZERO, &mut out);
        assert!(out.is_empty(), "old bucket must be unlinked");
        g.query_into(Position::new(95.0, 95.0), 10.0, SimTime::ZERO, &mut out);
        assert_eq!(ids(&out), vec![NodeId(7)]);
        g.remove(NodeId(7));
        assert_eq!(g.len(), 0);
    }

    #[test]
    fn stale_buckets_are_padded_by_walker_speed() {
        let mut g = NodeGrid::new(75.0, SimTime::ZERO);
        // Walks +x at 10 m/s from the origin, bucketed at t=0.
        let walk = Motion {
            from: Position::new(0.0, 0.0),
            to: Position::new(1000.0, 0.0),
            depart: SimTime::ZERO,
            speed_mps: 10.0,
        };
        g.upsert(NodeId(0), &walk, SimTime::ZERO);
        // 30 s later the node is at x=300 but still bucketed at x=0. A
        // query near its *true* position must still surface it via the pad.
        let mut out = Vec::new();
        g.query_into(Position::new(300.0, 0.0), 75.0, t(30.0), &mut out);
        assert_eq!(
            ids(&out),
            vec![NodeId(0)],
            "pad must cover un-rebucketed drift"
        );
        // After re-bucketing the pad resets and a query at the old spot
        // no longer drags the ring wide.
        g.rebucket(t(30.0), |_| Some(walk));
        out.clear();
        g.query_into(Position::new(300.0, 0.0), 75.0, t(30.0), &mut out);
        assert_eq!(ids(&out), vec![NodeId(0)]);
        assert_eq!(g.stamp(), t(30.0));
    }

    #[test]
    fn rebucket_drops_arrived_walkers_from_drift() {
        let mut g = NodeGrid::new(75.0, SimTime::ZERO);
        let walk = Motion {
            from: Position::new(0.0, 0.0),
            to: Position::new(10.0, 0.0),
            depart: SimTime::ZERO,
            speed_mps: 10.0,
        };
        g.upsert(NodeId(0), &walk, SimTime::ZERO);
        assert!(g.max_speed > 0.0);
        g.rebucket(t(5.0), |_| Some(walk)); // arrived at t=1
        assert_eq!(g.max_speed, 0.0, "arrived node no longer contributes drift");
        assert!(g.moving.is_empty());
    }

    #[test]
    fn rebucket_drops_dead_nodes() {
        let mut g = NodeGrid::new(75.0, SimTime::ZERO);
        let walk = Motion {
            from: Position::new(0.0, 0.0),
            to: Position::new(500.0, 0.0),
            depart: SimTime::ZERO,
            speed_mps: 1.0,
        };
        g.upsert(NodeId(3), &walk, SimTime::ZERO);
        g.rebucket(t(1.0), |_| None);
        assert_eq!(g.len(), 0);
    }

    #[test]
    fn huge_pad_falls_back_to_full_listing() {
        let mut g = NodeGrid::new(1.0, SimTime::ZERO);
        let sprint = Motion {
            from: Position::new(0.0, 0.0),
            to: Position::new(1.0e6, 0.0),
            depart: SimTime::ZERO,
            speed_mps: 100.0,
        };
        g.upsert(NodeId(0), &sprint, SimTime::ZERO);
        g.upsert(NodeId(1), &stationary(9999.0, 9999.0), SimTime::ZERO);
        let mut out = Vec::new();
        // 1 h of staleness at 100 m/s with 1 m cells: the ring would span
        // hundreds of thousands of cells; the fallback lists everything.
        g.query_into(
            Position::new(0.0, 0.0),
            1.0,
            SimTime::ZERO + SimDuration::from_secs(3600),
            &mut out,
        );
        assert_eq!(ids(&out), vec![NodeId(0), NodeId(1)]);
    }

    fn tx(id: u64, x: f64, y: f64) -> TxEntry {
        TxEntry {
            id,
            sender: NodeId(id as u32),
            pos: Position::new(x, y),
            start: SimTime::ZERO,
            end: SimTime::ZERO,
        }
    }

    #[test]
    fn tx_grid_inserts_queries_and_removes() {
        let mut g = TxGrid::new(75.0);
        g.insert(tx(1, 0.0, 0.0));
        g.insert(tx(2, 60.0, 0.0));
        g.insert(tx(3, 900.0, 900.0));
        let mut out = Vec::new();
        g.query_into(Position::new(10.0, 10.0), 150.0, &mut out);
        let mut ids: Vec<u64> = out.iter().map(|t| t.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2]);
        g.remove(2);
        out.clear();
        g.query_into(Position::new(10.0, 10.0), 150.0, &mut out);
        let ids: Vec<u64> = out.iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![1]);
    }

    #[test]
    fn negative_coordinates_bucket_consistently() {
        let mut g = NodeGrid::new(75.0, SimTime::ZERO);
        g.upsert(NodeId(0), &stationary(-10.0, -10.0), SimTime::ZERO);
        let mut out = Vec::new();
        g.query_into(Position::new(-5.0, -5.0), 75.0, SimTime::ZERO, &mut out);
        assert_eq!(ids(&out), vec![NodeId(0)]);
    }
}
