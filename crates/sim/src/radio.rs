//! Geometry and the on-air representation of frames.
//!
//! Propagation is a disk model: a frame transmitted by `s` can be received
//! by every alive node within `range_m` of `s` — the broadcast/overhearing
//! property PDS exploits. Receptions fail on collision (another in-range
//! transmission overlaps in time), half-duplex conflict, or baseline random
//! loss; see [`World`](crate::World) for the delivery rules.

use crate::transport::MessageId;
use bytes::Bytes;
use pds_core::NodeId;
use pds_core::SimTime;
use std::fmt;
use std::sync::Arc;

/// A point in the 2-D simulation area, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Position {
    /// East–west coordinate in meters.
    pub x: f64,
    /// North–south coordinate in meters.
    pub y: f64,
}

impl Position {
    /// Creates a position from coordinates in meters.
    #[must_use]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to `other` in meters.
    #[must_use]
    pub fn distance(&self, other: &Position) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x, self.y)
    }
}

/// Piecewise-linear motion: a node walks from `from` toward `to` at
/// `speed_mps`, then stays at `to`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Motion {
    pub from: Position,
    pub to: Position,
    pub depart: SimTime,
    pub speed_mps: f64,
}

impl Motion {
    /// A node standing still at `pos`.
    pub fn stationary(pos: Position, now: SimTime) -> Self {
        Self {
            from: pos,
            to: pos,
            depart: now,
            speed_mps: 0.0,
        }
    }

    /// Position at time `at` (clamped to the destination).
    pub fn position(&self, at: SimTime) -> Position {
        let total = self.from.distance(&self.to);
        if total <= f64::EPSILON || self.speed_mps <= 0.0 {
            return if at >= self.arrival() {
                self.to
            } else {
                self.from
            };
        }
        let walked = self.speed_mps * at.since(self.depart).as_secs_f64();
        if walked >= total {
            return self.to;
        }
        let f = walked / total;
        Position::new(
            self.from.x + (self.to.x - self.from.x) * f,
            self.from.y + (self.to.y - self.from.y) * f,
        )
    }

    /// Time the node reaches (or reached) its destination.
    pub fn arrival(&self) -> SimTime {
        let total = self.from.distance(&self.to);
        if total <= f64::EPSILON || self.speed_mps <= 0.0 {
            return self.depart;
        }
        self.depart + pds_core::SimDuration::from_secs_f64(total / self.speed_mps)
    }
}

/// Bit set over fragment indices, used in selective acks.
///
/// The first 64 bits live inline: messages rarely fragment past 64
/// pieces, and the receive path creates one of these per message, so the
/// common case must not allocate.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub(crate) struct FragSet {
    word0: u64,
    spill: Vec<u64>,
    count: u32,
}

impl FragSet {
    pub fn new(frag_count: u32) -> Self {
        let words = (frag_count as usize).div_ceil(64).max(1);
        Self {
            word0: 0,
            spill: vec![0; words - 1],
            count: 0,
        }
    }

    /// Sets a bit; returns true if newly set.
    pub fn set(&mut self, idx: u32) -> bool {
        let (w, b) = (idx as usize / 64, idx % 64);
        let mask = 1u64 << b;
        let word = if w == 0 {
            &mut self.word0
        } else {
            &mut self.spill[w - 1]
        };
        if *word & mask == 0 {
            *word |= mask;
            self.count += 1;
            true
        } else {
            false
        }
    }

    pub fn contains(&self, idx: u32) -> bool {
        let (w, b) = (idx as usize / 64, idx % 64);
        let word = if w == 0 {
            Some(self.word0)
        } else {
            self.spill.get(w - 1).copied()
        };
        word.is_some_and(|word| word & (1u64 << b) != 0)
    }

    #[cfg(test)]
    pub fn len(&self) -> u32 {
        self.count
    }

    pub fn is_complete(&self, frag_count: u32) -> bool {
        self.count >= frag_count
    }

    /// A set with every fragment bit up to `frag_count` present. The
    /// transport's delivered-message tombstones rebuild their (complete)
    /// ack bitmap with this instead of retaining one per message; the
    /// wire size (`byte_len`) depends only on `frag_count`, so the
    /// rebuilt ack frame is byte-identical to the retained one.
    pub fn full(frag_count: u32) -> Self {
        let mut s = Self::new(frag_count);
        for i in 0..frag_count {
            s.set(i);
        }
        s
    }

    /// Merges another set into this one (bitwise or).
    pub fn merge(&mut self, other: &FragSet) {
        if other.spill.len() > self.spill.len() {
            self.spill.resize(other.spill.len(), 0);
        }
        self.word0 |= other.word0;
        for (w, o) in self.spill.iter_mut().zip(other.spill.iter()) {
            *w |= *o;
        }
        self.count =
            self.word0.count_ones() + self.spill.iter().map(|w| w.count_ones()).sum::<u32>();
    }

    /// Wire size of the bitmap in bytes.
    pub fn byte_len(&self) -> usize {
        (1 + self.spill.len()) * 8
    }

    #[cfg(test)]
    pub fn iter_missing(&self, frag_count: u32) -> impl Iterator<Item = u32> + '_ {
        (0..frag_count).filter(move |&i| !self.contains(i))
    }
}

/// A frame on the air: the unit of transmission, ≤ `max_frame_bytes`.
#[derive(Debug, Clone)]
pub(crate) struct Frame {
    pub sender: NodeId,
    pub wire_bytes: usize,
    /// Traffic class of the carried message (see [`pds_obs::class`]);
    /// always `OTHER` for acks.
    pub class: u8,
    pub kind: FrameKind,
}

#[derive(Debug, Clone)]
pub(crate) enum FrameKind {
    /// One fragment of an application message.
    Data {
        msg: MessageId,
        frag: u32,
        frag_count: u32,
        /// Shared across all fragments of a message (and with the sender's
        /// tracking state): cloning a frame is a refcount bump, not a list
        /// copy.
        intended: Arc<[NodeId]>,
        /// The *whole* message payload, shared by every fragment (and the
        /// sender's tracking state) — an ns-3-style shared packet buffer.
        /// The fragment's own bytes are the `frag`-th `frag_payload`-sized
        /// window of it; per-fragment wire length is computed
        /// arithmetically, so fragment slices never materialize and
        /// reassembly is a refcount bump instead of a memcpy.
        payload: Bytes,
        /// Total wire bytes of the whole message (for overhead metadata).
        msg_wire_bytes: u32,
    },
    /// Selective acknowledgement of the fragments of `msg` received so far.
    Ack { msg: MessageId, received: FragSet },
}

/// A transmission in progress (or recently finished, kept for overlap
/// checks).
#[derive(Debug, Clone)]
pub(crate) struct Transmission {
    pub id: u64,
    pub sender: NodeId,
    /// Sender position captured at transmission start. Frames last
    /// milliseconds and nodes move at pedestrian speed, so this is the
    /// delivery geometry even if the sender moves or leaves mid-frame.
    pub start_pos: Position,
    pub start: SimTime,
    pub end: SimTime,
    pub frame: Frame,
}

impl Transmission {
    /// Whether two transmission windows overlap in time.
    pub fn overlaps(&self, start: SimTime, end: SimTime) -> bool {
        self.start < end && start < self.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn stationary_motion_never_moves() {
        let m = Motion::stationary(Position::new(1.0, 2.0), SimTime::ZERO);
        assert_eq!(
            m.position(SimTime::from_secs_f64(100.0)),
            Position::new(1.0, 2.0)
        );
        assert_eq!(m.arrival(), SimTime::ZERO);
    }

    #[test]
    fn motion_interpolates_linearly() {
        let m = Motion {
            from: Position::new(0.0, 0.0),
            to: Position::new(10.0, 0.0),
            depart: SimTime::ZERO,
            speed_mps: 1.0,
        };
        let half = m.position(SimTime::from_secs_f64(5.0));
        assert!((half.x - 5.0).abs() < 1e-9);
        assert_eq!(m.position(SimTime::from_secs_f64(20.0)), m.to);
        assert_eq!(m.arrival(), SimTime::from_secs_f64(10.0));
    }

    #[test]
    fn fragset_counts_and_completes() {
        let mut s = FragSet::new(130);
        assert!(!s.is_complete(130));
        for i in 0..130 {
            assert!(s.set(i), "index {i} should be new");
        }
        assert!(!s.set(5));
        assert!(s.is_complete(130));
        assert_eq!(s.len(), 130);
        assert_eq!(s.iter_missing(130).count(), 0);
    }

    #[test]
    fn fragset_merge_unions() {
        let mut a = FragSet::new(10);
        a.set(1);
        let mut b = FragSet::new(10);
        b.set(2);
        b.set(1);
        a.merge(&b);
        assert!(a.contains(1) && a.contains(2));
        assert_eq!(a.len(), 2);
        assert_eq!(a.iter_missing(10).count(), 8);
    }

    #[test]
    fn fragset_full_is_complete() {
        assert!(FragSet::full(65).is_complete(65));
        assert_eq!(FragSet::full(65).byte_len(), 16);
    }

    #[test]
    fn transmission_overlap_rules() {
        let tx = Transmission {
            id: 1,
            sender: NodeId(0),
            start_pos: Position::new(0.0, 0.0),
            start: SimTime::from_micros(100),
            end: SimTime::from_micros(200),
            frame: Frame {
                sender: NodeId(0),
                wire_bytes: 100,
                class: 0,
                kind: FrameKind::Ack {
                    msg: MessageId {
                        origin: NodeId(0),
                        seq: 0,
                    },
                    received: FragSet::new(1),
                },
            },
        };
        assert!(tx.overlaps(SimTime::from_micros(150), SimTime::from_micros(250)));
        assert!(tx.overlaps(SimTime::from_micros(50), SimTime::from_micros(101)));
        assert!(!tx.overlaps(SimTime::from_micros(200), SimTime::from_micros(300)));
        assert!(!tx.overlaps(SimTime::from_micros(0), SimTime::from_micros(100)));
    }
}
