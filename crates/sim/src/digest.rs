//! Streaming replay digest over the dispatched event stream.
//!
//! Compiled only under the `replay-digest` feature. The kernel folds every
//! event it dispatches — virtual timestamp, kind, and identifying payload —
//! into a running FNV-1a accumulator. Two runs that dispatched the same
//! events at the same virtual times in the same order end with the same
//! digest; any divergence (a reordered MAC attempt, a timer firing one
//! microsecond late, a different rng roll changing a backoff) changes it.
//!
//! This is the enforcement half of the determinism contract (DESIGN.md §8):
//! the `replay_digest` integration test runs one scenario twice under both
//! spatial index implementations and asserts all four digests are equal,
//! which CI gates on.

use crate::events::EventKind;
use pds_core::SimTime;

/// Incremental FNV-1a fold of the dispatched event stream.
///
/// The digest is order- and value-sensitive: every field is folded as its
/// 8 little-endian bytes, and each event kind contributes a distinct tag so
/// that, e.g., `TxEnd(5)` and `Control(5)` at the same instant cannot
/// collide structurally.
#[derive(Debug, Clone)]
pub(crate) struct ReplayDigest(u64);

impl Default for ReplayDigest {
    fn default() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }
}

impl ReplayDigest {
    fn fold(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Folds one dispatched event at virtual time `now`.
    pub(crate) fn record(&mut self, now: SimTime, kind: &EventKind) {
        self.fold(now.as_micros());
        match *kind {
            EventKind::Start(id) => {
                self.fold(1);
                self.fold(u64::from(id.0));
            }
            EventKind::MacTry { node, deferred } => {
                self.fold(2);
                self.fold(u64::from(node.0));
                self.fold(u64::from(deferred));
            }
            EventKind::TxEnd(tx) => {
                self.fold(3);
                self.fold(tx);
            }
            EventKind::BucketDrain(node) => {
                self.fold(4);
                self.fold(u64::from(node.0));
            }
            EventKind::Timer { node, id } => {
                self.fold(5);
                self.fold(u64::from(node.0));
                self.fold(id.0);
            }
            EventKind::Control(id) => {
                self.fold(6);
                self.fold(id);
            }
            EventKind::Sweep => self.fold(7),
            EventKind::FaultDeliver(id) => {
                self.fold(8);
                self.fold(id);
            }
        }
    }

    /// The digest of everything recorded so far.
    pub(crate) fn value(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_core::{NodeId, TimerId};

    #[test]
    fn same_stream_same_digest() {
        let stream = [
            (SimTime::from_micros(1), EventKind::Start(NodeId(0))),
            (
                SimTime::from_micros(5),
                EventKind::MacTry {
                    node: NodeId(0),
                    deferred: false,
                },
            ),
            (SimTime::from_micros(9), EventKind::TxEnd(3)),
        ];
        let digest = |events: &[(SimTime, EventKind)]| {
            let mut d = ReplayDigest::default();
            for (at, kind) in events {
                d.record(*at, kind);
            }
            d.value()
        };
        assert_eq!(digest(&stream), digest(&stream));
    }

    #[test]
    fn digest_is_order_and_payload_sensitive() {
        let a = (SimTime::from_micros(1), EventKind::TxEnd(1));
        let b = (
            SimTime::from_micros(2),
            EventKind::Timer {
                node: NodeId(1),
                id: TimerId(9),
            },
        );
        let digest = |events: &[&(SimTime, EventKind)]| {
            let mut d = ReplayDigest::default();
            for (at, kind) in events {
                d.record(*at, kind);
            }
            d.value()
        };
        assert_ne!(digest(&[&a, &b]), digest(&[&b, &a]));
        assert_ne!(
            digest(&[&(SimTime::from_micros(1), EventKind::TxEnd(1))]),
            digest(&[&(SimTime::from_micros(1), EventKind::Control(1))]),
            "kind tags must separate same-payload events"
        );
    }
}
