//! Simulation configuration.
//!
//! Defaults reproduce the calibrated parameters the paper ports from its
//! Android prototype into NS-3 (§V-2, §V-4, §VI-A): 1.5 KB frames, a MAC
//! broadcast bitrate in the single-digit Mbps range, a ~1 MB OS UDP send
//! buffer, a 300 KB / 4.5 Mbps leaky bucket, and 0.2 s / 4-retry
//! ack/retransmission.

use pds_core::SimDuration;

/// Physical-layer and MAC-layer parameters shared by all nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct RadioConfig {
    /// Radio range in meters (disk propagation model). The default of 75 m
    /// with 50 m grid spacing makes all 8 surrounding grid neighbors
    /// reachable, as in the paper's 10×10 grid scenario.
    pub range_m: f64,
    /// MAC broadcast bitrate in bits per second. The default (12 Mbps) is
    /// chosen so the per-hop service rate comfortably exceeds the paper's
    /// 4.5 Mbps application injection rate — matching the NS-3 evaluation,
    /// where multi-hop transfers pipeline at close to the injection rate
    /// (the paper's 20 MB retrieval takes only ~30 % longer than the
    /// single-hop serialization minimum).
    pub mac_rate_bps: f64,
    /// Fixed per-frame MAC/PHY overhead time (preamble, DIFS, etc.).
    pub frame_overhead: SimDuration,
    /// Maximum frame size in bytes, headers included (the prototype sends
    /// 1.5 KB UDP packets).
    pub max_frame_bytes: usize,
    /// OS UDP send-buffer capacity in bytes. The prototype observed ~658
    /// 1.5 KB packets (~1 MB) buffered before overflow drops begin.
    pub os_buffer_bytes: usize,
    /// Per-receiver baseline frame-loss probability (fading, interference)
    /// independent of collisions.
    pub baseline_loss: f64,
    /// Upper bound of the uniform random CSMA backoff after sensing a busy
    /// medium.
    pub backoff_max: SimDuration,
    /// Path-loss exponent for received power (`P ∝ d^-α`); ~2 free space,
    /// 3–4 indoor.
    pub path_loss_exp: f64,
    /// Physical capture: an overlapped frame is still decoded when its
    /// received power exceeds `capture_sinr` × (sum of interfering powers).
    /// NS-3's Wi-Fi PHY models this; without it, cross traffic at a relay
    /// funnel destroys every frame of both streams and multi-hop transfers
    /// deadlock at hidden-terminal junctions.
    pub capture_sinr: f64,
    /// Carrier-sense range as a multiple of the decode range. Energy
    /// detection triggers well below the decode threshold, so real CSMA
    /// senses transmitters it cannot decode (802.11 / NS-3 model ~2×).
    /// At 2.0, any two senders sharing a receiver are mutually sensing, so
    /// classic hidden terminals disappear; set 1.0 to study them.
    pub cs_range_factor: f64,
    /// Interference horizon as a multiple of the decode range: transmitters
    /// farther than `range_m × interference_range_factor` from a receiver
    /// are excluded from its interference sum. The default (infinity) sums
    /// every concurrent transmission, exactly as NS-3-style full-SINR does.
    /// Large-area scenarios can set ~4.0: at the default α = 3 a
    /// transmitter 4 ranges away delivers 1/64 of the weakest decodable
    /// signal, so truncating there changes capture decisions only when
    /// dozens of such far transmitters overlap — while making the per-frame
    /// interference sum a local computation.
    pub interference_range_factor: f64,
    /// How long a transmission must have been on the air before carrier
    /// sense detects it (rx/tx turnaround + detection). Two stations whose
    /// deferred starts fall within this window of each other collide — the
    /// CSMA vulnerability slot that produces contention losses among
    /// concurrent senders (Fig. 3's leaky-bucket-only curve).
    pub sense_delay: SimDuration,
    /// Whether a paced sender observes OS-buffer occupancy and waits
    /// (blocking-send semantics) instead of overflowing. `true` models the
    /// NS-3 multi-hop evaluation (device queues do not silently eat data);
    /// `false` models the Android prototype of §V, whose UDP sends are
    /// fire-and-forget and overflow silently — the very behaviour the
    /// paper's leaky bucket was calibrated against.
    pub os_backpressure: bool,
}

impl Default for RadioConfig {
    fn default() -> Self {
        Self {
            range_m: 75.0,
            mac_rate_bps: 12.0e6,
            frame_overhead: SimDuration::from_micros(300),
            max_frame_bytes: 1500,
            os_buffer_bytes: 1_000_000,
            baseline_loss: 0.02,
            backoff_max: SimDuration::from_millis(2),
            path_loss_exp: 3.0,
            capture_sinr: 2.0,
            cs_range_factor: 2.0,
            interference_range_factor: f64::INFINITY,
            sense_delay: SimDuration::from_micros(30),
            os_backpressure: true,
        }
    }
}

impl RadioConfig {
    /// Airtime of a frame of `bytes` bytes, including fixed overhead.
    #[must_use]
    pub fn frame_airtime(&self, bytes: usize) -> SimDuration {
        let tx = (bytes as f64 * 8.0) / self.mac_rate_bps;
        SimDuration::from_secs_f64(tx) + self.frame_overhead
    }
}

/// How an application's outgoing messages are paced into the OS send buffer
/// (§V-2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SenderMode {
    /// Inject frames into the OS buffer as fast as the application produces
    /// them. Reproduces the prototype's raw `UDP send` behaviour: the buffer
    /// overflows and the OS silently discards frames (~14 % reception).
    RawUdp,
    /// Classic leaky bucket: at most `capacity_bytes` of un-leaked data
    /// outstanding, tokens refilling at `rate_bps`. The paper's calibrated
    /// best values are 300 KB and 4.5 Mbps.
    LeakyBucket {
        /// Burst allowance in bytes (`BucketCapacity`).
        capacity_bytes: usize,
        /// Sustained injection rate in bits per second (`LeakingRate`).
        rate_bps: f64,
    },
}

impl SenderMode {
    /// The paper's calibrated leaky bucket: 300 KB capacity, 4.5 Mbps rate.
    #[must_use]
    pub fn paper_leaky_bucket() -> Self {
        Self::LeakyBucket {
            capacity_bytes: 300_000,
            rate_bps: 4.5e6,
        }
    }
}

impl Default for SenderMode {
    fn default() -> Self {
        Self::paper_leaky_bucket()
    }
}

/// Application-level per-hop ack/retransmission parameters (§V-1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AckConfig {
    /// Whether intended receivers acknowledge messages at all.
    pub enabled: bool,
    /// How long the sender waits for acks before retransmitting
    /// (`RetrTimeout`; the paper finds benefits plateau at 0.2 s).
    pub retr_timeout: SimDuration,
    /// Maximum number of retransmissions per message (`MaxRetrTime`;
    /// plateaus at 4).
    pub max_retr: u32,
    /// Delay before an intended receiver acknowledges an *incomplete*
    /// message (gives trailing fragments time to arrive); complete messages
    /// are acked after a short random jitter.
    pub ack_delay: SimDuration,
}

impl Default for AckConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            retr_timeout: SimDuration::from_millis(200),
            max_retr: 4,
            ack_delay: SimDuration::from_millis(40),
        }
    }
}

impl AckConfig {
    /// Acknowledgements disabled entirely (the paper's "leaky bucket only"
    /// and raw-UDP configurations).
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }
}

/// Which index backs the kernel's spatial range queries (neighbor
/// discovery, carrier sense, frame delivery).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpatialIndex {
    /// Uniform hash grid over node and transmission positions; range
    /// queries probe only the cells overlapping the query disk. The
    /// default, and the only sane choice beyond a few hundred nodes.
    #[default]
    Grid,
    /// Exhaustive scans over all nodes/transmissions — the reference
    /// implementation the grid is differentially tested against. Results
    /// (deliveries, stats, replay streams) are bit-identical to `Grid`.
    BruteForce,
}

/// Spatial-index tuning knobs. With the defaults the grid is exact and
/// maintenance-free from the caller's perspective; both knobs trade a
/// little query precision (wider, padded probes) for less bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct SpatialConfig {
    /// Which query path the kernel uses. Both are always maintained, so
    /// this can differ between otherwise identical runs for differential
    /// testing without perturbing replay.
    pub index: SpatialIndex,
    /// Grid cell edge as a multiple of `range_m`. 1.0 (cell ≈ radio
    /// range) makes a decode-range query probe at most 3×3 cells; smaller
    /// cells probe more, emptier cells, larger cells scan more candidates
    /// per cell.
    pub cell_factor: f64,
    /// How stale moving-node buckets may get before they are re-bucketed.
    /// [`SimDuration::ZERO`] (the default) re-buckets whenever the event
    /// clock advances; larger intervals skip that work and instead widen
    /// every query by `max walker speed × staleness`, which stays exact
    /// but returns more candidates to filter.
    pub rebucket_interval: SimDuration,
}

impl Default for SpatialConfig {
    fn default() -> Self {
        Self {
            index: SpatialIndex::Grid,
            cell_factor: 1.0,
            rebucket_interval: SimDuration::ZERO,
        }
    }
}

/// Which data structure backs the kernel's event queue (DESIGN.md §11).
///
/// Both implementations pop in identical `(time, insertion seq)` order, so
/// — exactly like [`SpatialIndex`] — this can differ between otherwise
/// identical runs for differential testing without perturbing replay
/// digests or statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheduler {
    /// Hierarchical timer wheel: O(1) amortized push/pop. The default
    /// (unless the `heap-queue` cargo feature is enabled).
    Wheel,
    /// Binary heap: O(log n) push/pop — the reference implementation the
    /// wheel is differentially tested against. The `heap-queue` cargo
    /// feature makes this the default so CI can gate digest equality
    /// across separately built binaries.
    BinaryHeap,
}

impl Default for Scheduler {
    fn default() -> Self {
        if cfg!(feature = "heap-queue") {
            Self::BinaryHeap
        } else {
            Self::Wheel
        }
    }
}

/// Complete simulator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Physical/MAC parameters.
    pub radio: RadioConfig,
    /// Outgoing pacing mode.
    pub sender: SenderMode,
    /// Per-hop reliability parameters.
    pub ack: AckConfig,
    /// Spatial range-query index selection and tuning.
    pub spatial: SpatialConfig,
    /// Event-queue implementation selection.
    pub scheduler: Scheduler,
    /// Number of spatial shards for intra-run parallel stepping.
    ///
    /// `1` (the default) is the exact sequential path with zero overhead.
    /// Values > 1 precompute physical receive verdicts for transmissions
    /// ending inside a conservative lookahead window on a scoped thread
    /// pool; every RNG draw still happens on the sequential commit path,
    /// so the replay digest and `Stats` are bit-identical for any shard
    /// count (gated in CI the same way grid/brute and wheel/heap are).
    /// `0` is normalized to `1` at `World::new`.
    pub shards: u32,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            radio: RadioConfig::default(),
            sender: SenderMode::default(),
            ack: AckConfig::default(),
            spatial: SpatialConfig::default(),
            scheduler: Scheduler::default(),
            shards: 1,
        }
    }
}

impl SimConfig {
    /// The configuration the paper uses for all multi-hop experiments:
    /// calibrated leaky bucket plus ack/retransmission.
    #[must_use]
    pub fn paper_multi_hop() -> Self {
        Self::default()
    }

    /// Raw UDP broadcast with no pacing and no acks (Fig. 3 baseline).
    #[must_use]
    pub fn raw_udp() -> Self {
        Self {
            sender: SenderMode::RawUdp,
            ack: AckConfig::disabled(),
            ..Self::default()
        }
    }

    /// Leaky bucket pacing but no acks (Fig. 3 middle configuration).
    #[must_use]
    pub fn leaky_only() -> Self {
        Self {
            ack: AckConfig::disabled(),
            ..Self::default()
        }
    }

    /// The Android-prototype regime of §V: the phones' effective broadcast
    /// service rate (~5 Mbps) and fire-and-forget UDP sends that overflow
    /// the OS buffer silently. Used by the single-hop calibration
    /// experiments (Fig. 3 and the §V parameter sweeps).
    #[must_use]
    pub fn prototype() -> Self {
        let mut c = Self::default();
        c.radio.mac_rate_bps = 5.0e6;
        c.radio.os_backpressure = false;
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_airtime_scales_with_size() {
        let r = RadioConfig::default();
        let small = r.frame_airtime(100);
        let large = r.frame_airtime(1500);
        assert!(large > small);
        // 1500 B at 12 Mbps = 1 ms + 0.3 ms overhead.
        assert_eq!(large.as_micros(), 1300);
    }

    #[test]
    fn paper_bucket_values() {
        match SenderMode::paper_leaky_bucket() {
            SenderMode::LeakyBucket {
                capacity_bytes,
                rate_bps,
            } => {
                assert_eq!(capacity_bytes, 300_000);
                assert!((rate_bps - 4.5e6).abs() < 1.0);
            }
            SenderMode::RawUdp => panic!("expected leaky bucket"),
        }
    }

    #[test]
    fn presets_differ_as_expected() {
        assert!(!SimConfig::raw_udp().ack.enabled);
        assert_eq!(SimConfig::raw_udp().sender, SenderMode::RawUdp);
        assert!(!SimConfig::leaky_only().ack.enabled);
        assert!(SimConfig::paper_multi_hop().ack.enabled);
    }

    #[test]
    fn spatial_defaults_are_grid_with_range_sized_cells() {
        let s = SpatialConfig::default();
        assert_eq!(s.index, SpatialIndex::Grid);
        assert!((s.cell_factor - 1.0).abs() < 1e-12);
        assert_eq!(s.rebucket_interval, SimDuration::ZERO);
    }

    #[test]
    fn default_shards_is_the_sequential_path() {
        assert_eq!(SimConfig::default().shards, 1);
        assert_eq!(SimConfig::paper_multi_hop().shards, 1);
    }

    #[test]
    fn default_ack_matches_paper_plateau() {
        let a = AckConfig::default();
        assert_eq!(a.retr_timeout, SimDuration::from_millis(200));
        assert_eq!(a.max_retr, 4);
    }
}
