//! Traffic counters.
//!
//! The paper's *message overhead* metric is "the number of bytes of all
//! messages" (§VI-A); [`Stats::bytes_sent`] counts every on-air byte —
//! data fragments, retransmissions and acks alike.

/// On-air data bytes split by protocol phase (traffic class).
///
/// Carried by every data frame as a one-byte class tag (see
/// [`pds_obs::class`]); the radio layer buckets bytes here at the single
/// transmission-counting site, so the split is exact:
/// `total() == Stats::data_bytes_sent` always.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseBytes {
    /// PDD (discovery) traffic.
    pub pdd: u64,
    /// PDR (CDI collection + chunk retrieval) traffic.
    pub pdr: u64,
    /// MDR baseline traffic.
    pub mdr: u64,
    /// Unclassified traffic (non-PDS applications).
    pub other: u64,
}

impl PhaseBytes {
    /// Sum over all phases — equals the old undivided counter.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.pdd + self.pdr + self.mdr + self.other
    }

    /// Adds `bytes` to the bucket for traffic class `class` (unknown
    /// classes count as `other`).
    pub fn add(&mut self, class: u8, bytes: u64) {
        match class {
            pds_obs::class::PDD => self.pdd += bytes,
            pds_obs::class::PDR => self.pdr += bytes,
            pds_obs::class::MDR => self.mdr += bytes,
            _ => self.other += bytes,
        }
    }

    /// Bucket-wise difference `self - earlier` (saturating).
    #[must_use]
    pub fn since(&self, earlier: &PhaseBytes) -> PhaseBytes {
        PhaseBytes {
            pdd: self.pdd.saturating_sub(earlier.pdd),
            pdr: self.pdr.saturating_sub(earlier.pdr),
            mdr: self.mdr.saturating_sub(earlier.mdr),
            other: self.other.saturating_sub(earlier.other),
        }
    }
}

/// Global traffic counters for a [`World`](crate::World).
///
/// Snapshot with `clone()` before a measurement window and subtract with
/// [`Stats::since`] after it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// Frames put on the air (including retransmissions and acks).
    pub frames_sent: u64,
    /// Frame receptions delivered up to the transport (per receiver).
    pub frames_delivered: u64,
    /// Frame receptions lost to overlapping transmissions.
    pub frames_collided: u64,
    /// Frame receptions lost to the baseline (fading) loss probability.
    pub frames_lost_random: u64,
    /// Frame receptions missed because the receiver was itself transmitting.
    pub frames_half_duplex: u64,
    /// Frames dropped at the OS UDP send buffer (overflow).
    pub frames_dropped_os: u64,
    /// Total on-air bytes (the paper's message-overhead metric).
    pub bytes_sent: u64,
    /// On-air bytes of data frames only.
    pub data_bytes_sent: u64,
    /// `data_bytes_sent` split by protocol phase (the paper's Fig. 9
    /// overhead decomposition); `data_bytes_by_phase.total() ==
    /// data_bytes_sent` is an invariant.
    pub data_bytes_by_phase: PhaseBytes,
    /// On-air bytes of ack frames only.
    pub ack_bytes_sent: u64,
    /// Application messages submitted for sending.
    pub messages_sent: u64,
    /// Complete application messages delivered (per receiving node,
    /// including overhearing deliveries).
    pub messages_delivered: u64,
    /// Reliable messages abandoned after `MaxRetrTime` retransmissions.
    pub messages_failed: u64,
    /// Data frames re-sent by retransmission attempts (missing fragments
    /// only). Zero when `max_retr` is 0 and messages are single-fragment —
    /// the DST bounded-retry invariant.
    pub frames_retransmitted: u64,
    /// Receptions cut by an injected partition or silence window (DST).
    pub frames_fault_cut: u64,
    /// Receptions dropped by the injected extra-loss fault (DST).
    pub frames_fault_dropped: u64,
    /// Receptions diverted to a delayed delivery (DST); they count under
    /// `frames_delivered` when they actually arrive.
    pub frames_fault_delayed: u64,
    /// Receptions duplicated by the injected duplication fault (DST); the
    /// extra copy counts under `frames_delivered` on arrival.
    pub frames_fault_duplicated: u64,
}

impl Stats {
    /// Counter-wise difference `self - earlier` (saturating), for measuring
    /// a window between two snapshots.
    #[must_use]
    pub fn since(&self, earlier: &Stats) -> Stats {
        Stats {
            frames_sent: self.frames_sent.saturating_sub(earlier.frames_sent),
            frames_delivered: self
                .frames_delivered
                .saturating_sub(earlier.frames_delivered),
            frames_collided: self.frames_collided.saturating_sub(earlier.frames_collided),
            frames_lost_random: self
                .frames_lost_random
                .saturating_sub(earlier.frames_lost_random),
            frames_half_duplex: self
                .frames_half_duplex
                .saturating_sub(earlier.frames_half_duplex),
            frames_dropped_os: self
                .frames_dropped_os
                .saturating_sub(earlier.frames_dropped_os),
            bytes_sent: self.bytes_sent.saturating_sub(earlier.bytes_sent),
            data_bytes_sent: self.data_bytes_sent.saturating_sub(earlier.data_bytes_sent),
            data_bytes_by_phase: self.data_bytes_by_phase.since(&earlier.data_bytes_by_phase),
            ack_bytes_sent: self.ack_bytes_sent.saturating_sub(earlier.ack_bytes_sent),
            messages_sent: self.messages_sent.saturating_sub(earlier.messages_sent),
            messages_delivered: self
                .messages_delivered
                .saturating_sub(earlier.messages_delivered),
            messages_failed: self.messages_failed.saturating_sub(earlier.messages_failed),
            frames_retransmitted: self
                .frames_retransmitted
                .saturating_sub(earlier.frames_retransmitted),
            frames_fault_cut: self
                .frames_fault_cut
                .saturating_sub(earlier.frames_fault_cut),
            frames_fault_dropped: self
                .frames_fault_dropped
                .saturating_sub(earlier.frames_fault_dropped),
            frames_fault_delayed: self
                .frames_fault_delayed
                .saturating_sub(earlier.frames_fault_delayed),
            frames_fault_duplicated: self
                .frames_fault_duplicated
                .saturating_sub(earlier.frames_fault_duplicated),
        }
    }
}

/// Per-node traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Frames this node put on the air.
    pub frames_sent: u64,
    /// On-air bytes this node transmitted.
    pub bytes_sent: u64,
    /// On-air bytes this node successfully received (frames delivered to
    /// its transport, intended or overheard).
    pub bytes_received: u64,
    /// Complete messages delivered to this node's application.
    pub messages_delivered: u64,
    /// Of those, messages it merely overheard.
    pub messages_overheard: u64,
}

/// A simple radio energy model (§VII of the paper: the communication-heavy
/// PDS design is dominated by radio cost; overhearing requires the radio to
/// stay on). Default values are in the regime of Wi-Fi measurements on
/// smartphones: a few hundred nJ per byte moved, plus a constant
/// idle-listening draw.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Energy per transmitted byte, in nanojoules.
    pub tx_nj_per_byte: f64,
    /// Energy per received byte, in nanojoules.
    pub rx_nj_per_byte: f64,
    /// Idle-listening power, in milliwatts (the price of overhearing).
    pub idle_mw: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            tx_nj_per_byte: 600.0,
            rx_nj_per_byte: 350.0,
            idle_mw: 250.0,
        }
    }
}

impl EnergyModel {
    /// Energy one node spent over `elapsed_s` seconds, in joules.
    #[must_use]
    pub fn node_energy_j(&self, stats: &NodeStats, elapsed_s: f64) -> f64 {
        (stats.bytes_sent as f64 * self.tx_nj_per_byte
            + stats.bytes_received as f64 * self.rx_nj_per_byte)
            / 1e9
            + self.idle_mw / 1e3 * elapsed_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts_counterwise() {
        let early = Stats {
            frames_sent: 10,
            bytes_sent: 1000,
            ..Stats::default()
        };
        let late = Stats {
            frames_sent: 25,
            bytes_sent: 4000,
            messages_delivered: 3,
            ..Stats::default()
        };
        let d = late.since(&early);
        assert_eq!(d.frames_sent, 15);
        assert_eq!(d.bytes_sent, 3000);
        assert_eq!(d.messages_delivered, 3);
    }

    #[test]
    fn energy_model_accounts_tx_rx_and_idle() {
        let model = EnergyModel {
            tx_nj_per_byte: 1000.0,
            rx_nj_per_byte: 500.0,
            idle_mw: 100.0,
        };
        let stats = NodeStats {
            bytes_sent: 1_000_000,
            bytes_received: 2_000_000,
            ..NodeStats::default()
        };
        // tx: 1e6 B × 1000 nJ/B = 1 J; rx: 2e6 B × 500 nJ/B = 1 J;
        // idle: 100 mW × 10 s = 1 J.
        let e = model.node_energy_j(&stats, 10.0);
        assert!((e - 3.0).abs() < 1e-9, "e = {e}");
    }

    #[test]
    fn idle_listening_dominates_when_quiet() {
        let model = EnergyModel::default();
        let quiet = NodeStats::default();
        let e = model.node_energy_j(&quiet, 60.0);
        assert!((e - 15.0).abs() < 1e-9, "60 s × 250 mW = 15 J, got {e}");
    }

    #[test]
    fn since_saturates_instead_of_underflowing() {
        let a = Stats {
            frames_sent: 1,
            data_bytes_by_phase: PhaseBytes {
                pdd: 10,
                ..PhaseBytes::default()
            },
            ..Stats::default()
        };
        let b = Stats {
            frames_sent: 5,
            data_bytes_by_phase: PhaseBytes {
                pdd: 50,
                pdr: 7,
                ..PhaseBytes::default()
            },
            ..Stats::default()
        };
        let d = a.since(&b);
        assert_eq!(d.frames_sent, 0);
        assert_eq!(d.data_bytes_by_phase.pdd, 0);
        assert_eq!(d.data_bytes_by_phase.pdr, 0);
    }

    #[test]
    fn phase_bytes_add_and_total() {
        let mut p = PhaseBytes::default();
        p.add(pds_obs::class::PDD, 100);
        p.add(pds_obs::class::PDR, 200);
        p.add(pds_obs::class::MDR, 300);
        p.add(pds_obs::class::OTHER, 5);
        p.add(200, 7); // unknown class counts as "other"
        assert_eq!(p.pdd, 100);
        assert_eq!(p.pdr, 200);
        assert_eq!(p.mdr, 300);
        assert_eq!(p.other, 12);
        assert_eq!(p.total(), 612);
    }

    #[test]
    fn phase_bytes_since_subtracts_per_bucket() {
        let early = PhaseBytes {
            pdd: 10,
            pdr: 20,
            mdr: 30,
            other: 40,
        };
        let late = PhaseBytes {
            pdd: 15,
            pdr: 120,
            mdr: 30,
            other: 41,
        };
        let d = late.since(&early);
        assert_eq!(
            d,
            PhaseBytes {
                pdd: 5,
                pdr: 100,
                mdr: 0,
                other: 1
            }
        );
        assert_eq!(d.total(), 106);
    }
}
