//! Slab storage for kernel tables: dense, id-indexed, allocation-light.
//!
//! The kernel used to key everything off `BTreeMap`s — node state,
//! motions, in-flight transmissions. City-scale worlds (10k–100k nodes,
//! ROADMAP item 2) turn those maps into the dominant memory and cache
//! cost: every lookup chases tree nodes and every entry pays pointer and
//! balance overhead. This module replaces them with two slab shapes that
//! preserve the determinism contract *exactly*:
//!
//! * [`DenseTable`] — a dense vector indexed by a monotone id
//!   ([`NodeId`]). Iteration order is ascending id, bit-identical to the
//!   `BTreeMap` it replaces, which matters wherever iteration feeds
//!   shared-rng draws or f64 summation (DESIGN.md §8).
//! * [`SeqSlab`] — a base-offset ring for values keyed by a monotone
//!   `u64` sequence with a bounded live window (transmissions are pruned
//!   at `now − 2×max_airtime`; controls fire and leave). Lookup is an
//!   index subtraction; iteration is ascending key order.
//!
//! **Generation-checked handles.** Ids in this kernel are never reused:
//! `next_node`, `next_tx` and `next_ctrl` only ever increment. A monotone
//! id therefore *is* a generation-checked handle — the degenerate case
//! where the slot index and the generation coincide. A stale handle (a
//! scheduled event naming a removed node, a pruned transmission id) can
//! never alias a newer entry: [`DenseTable::get`] finds an empty slot and
//! [`SeqSlab::get`] finds the key below its base, both returning `None`.
//! The `debug_assert` in [`SeqSlab::insert`] pins the monotonicity this
//! safety rests on.
//!
//! [`NodeTable`] adds the struct-of-arrays split on top of [`DenseTable`]:
//! the radio-phase flags that MAC/TX dispatches touch constantly live in
//! a parallel byte array (same idiom as the SoA grids in `spatial.rs`),
//! so the hot path reads one cache line instead of dragging in the whole
//! per-node struct.

use pds_core::NodeId;
use std::collections::VecDeque;

/// Radio-phase flag: the node's radio is currently transmitting.
pub(crate) const FLAG_TRANSMITTING: u8 = 1 << 0;
/// Radio-phase flag: a `MacTry` event is already scheduled.
pub(crate) const FLAG_MAC_SCHEDULED: u8 = 1 << 1;
/// Radio-phase flag: a `BucketDrain` event is already scheduled.
pub(crate) const FLAG_BUCKET_SCHEDULED: u8 = 1 << 2;

/// A dense slab indexed by [`NodeId`]. Replaces `BTreeMap<NodeId, T>`
/// with identical ascending-id iteration order and O(1) lookup.
///
/// Node ids are monotone and never reused (see the module docs), so a
/// slot, once vacated, stays vacant; peak memory is bounded by the
/// highest id ever issued, not by churn.
#[derive(Debug, Clone)]
pub(crate) struct DenseTable<T> {
    slots: Vec<Option<T>>,
    live: usize,
}

impl<T> Default for DenseTable<T> {
    fn default() -> Self {
        Self {
            slots: Vec::new(),
            live: 0,
        }
    }
}

impl<T> DenseTable<T> {
    /// Pre-sizes the slab for `n` nodes, so large scenario setup does not
    /// pay repeated doubling copies (and their transient peak-heap spikes).
    pub fn reserve(&mut self, n: usize) {
        let need = n.saturating_sub(self.slots.len());
        self.slots.reserve(need);
    }

    pub fn get(&self, id: &NodeId) -> Option<&T> {
        self.slots.get(id.0 as usize)?.as_ref()
    }

    pub fn get_mut(&mut self, id: &NodeId) -> Option<&mut T> {
        self.slots.get_mut(id.0 as usize)?.as_mut()
    }

    pub fn contains_key(&self, id: &NodeId) -> bool {
        self.get(id).is_some()
    }

    /// Inserts at `id`, growing the slab as needed. Returns the previous
    /// occupant, if any (never happens for monotone ids).
    pub fn insert(&mut self, id: NodeId, value: T) -> Option<T> {
        let i = id.0 as usize;
        if self.slots.len() <= i {
            self.slots.resize_with(i + 1, || None);
        }
        let slot = self.slots.get_mut(i)?;
        let old = slot.replace(value);
        if old.is_none() {
            self.live += 1;
        }
        old
    }

    pub fn remove(&mut self, id: &NodeId) -> Option<T> {
        let old = self.slots.get_mut(id.0 as usize)?.take();
        if old.is_some() {
            self.live -= 1;
        }
        old
    }

    pub fn len(&self) -> usize {
        self.live
    }

    /// Occupied ids, ascending — no allocation, unlike collecting keys.
    pub fn keys(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.iter().map(|(id, _)| id)
    }

    /// `(id, value)` pairs in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| Some((NodeId(i as u32), s.as_ref()?)))
    }

    /// Values in ascending id order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// Mutable values in ascending id order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.slots.iter_mut().filter_map(Option::as_mut)
    }
}

/// [`DenseTable`] plus a struct-of-arrays split: a parallel byte of hot
/// radio-phase flags per slot (`FLAG_*`), kept outside the cold per-node
/// struct so MAC/TX dispatches touch a compact array.
#[derive(Debug)]
pub(crate) struct NodeTable<T> {
    table: DenseTable<T>,
    flags: Vec<u8>,
}

impl<T> Default for NodeTable<T> {
    fn default() -> Self {
        Self {
            table: DenseTable::default(),
            flags: Vec::new(),
        }
    }
}

impl<T> NodeTable<T> {
    /// Pre-sizes both arrays (see [`DenseTable::reserve`]).
    pub fn reserve(&mut self, n: usize) {
        self.table.reserve(n);
        self.flags.reserve(n.saturating_sub(self.flags.len()));
    }

    pub fn get(&self, id: &NodeId) -> Option<&T> {
        self.table.get(id)
    }

    pub fn get_mut(&mut self, id: &NodeId) -> Option<&mut T> {
        self.table.get_mut(id)
    }

    /// The cold struct and the hot flags byte together — the common shape
    /// of MAC/TX call sites, borrowed disjointly from the two arrays.
    pub fn parts_mut(&mut self, id: &NodeId) -> Option<(&mut T, &mut u8)> {
        let state = self.table.get_mut(id)?;
        let flags = self.flags.get_mut(id.0 as usize)?;
        Some((state, flags))
    }

    /// Current flags byte, 0 if the node is gone.
    #[cfg(test)]
    pub fn flags(&self, id: &NodeId) -> u8 {
        if !self.table.contains_key(id) {
            return 0;
        }
        self.flags.get(id.0 as usize).copied().unwrap_or(0)
    }

    /// Sets or clears one flag bit; no-op if the node is gone.
    pub fn set_flag(&mut self, id: &NodeId, flag: u8, on: bool) {
        if let Some((_, flags)) = self.parts_mut(id) {
            if on {
                *flags |= flag;
            } else {
                *flags &= !flag;
            }
        }
    }

    pub fn contains_key(&self, id: &NodeId) -> bool {
        self.table.contains_key(id)
    }

    pub fn insert(&mut self, id: NodeId, value: T) -> Option<T> {
        let i = id.0 as usize;
        if self.flags.len() <= i {
            self.flags.resize(i + 1, 0);
        }
        if let Some(f) = self.flags.get_mut(i) {
            *f = 0;
        }
        self.table.insert(id, value)
    }

    pub fn remove(&mut self, id: &NodeId) -> Option<T> {
        if let Some(f) = self.flags.get_mut(id.0 as usize) {
            *f = 0;
        }
        self.table.remove(id)
    }

    pub fn len(&self) -> usize {
        self.table.len()
    }

    pub fn keys(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.table.keys()
    }

    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.table.values()
    }

    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.table.values_mut()
    }
}

/// A base-offset slab for values keyed by a monotone `u64` sequence with
/// a bounded live window. Replaces `BTreeMap<u64, T>` for transmissions
/// and scheduled controls: O(1) lookup by subtraction, ascending-key
/// iteration, and memory proportional to the live window (the leading
/// run of vacated slots is reclaimed as the base advances).
#[derive(Debug)]
pub(crate) struct SeqSlab<T> {
    /// Key of the first slot in `slots`.
    base: u64,
    slots: VecDeque<Option<T>>,
    live: usize,
}

impl<T> Default for SeqSlab<T> {
    fn default() -> Self {
        Self {
            base: 0,
            slots: VecDeque::new(),
            live: 0,
        }
    }
}

impl<T> SeqSlab<T> {
    fn index(&self, key: u64) -> Option<usize> {
        usize::try_from(key.checked_sub(self.base)?).ok()
    }

    /// Inserts the next value. `key` must be exactly one past the highest
    /// key ever inserted — callers allocate keys from a monotone counter,
    /// which is what makes stale handles unambiguous (module docs).
    pub fn insert(&mut self, key: u64, value: T) {
        debug_assert_eq!(
            key,
            self.base + self.slots.len() as u64,
            "SeqSlab keys must be allocated monotonically"
        );
        self.slots.push_back(Some(value));
        self.live += 1;
    }

    pub fn get(&self, key: &u64) -> Option<&T> {
        self.slots.get(self.index(*key)?)?.as_ref()
    }

    #[cfg(test)]
    pub fn contains_key(&self, key: &u64) -> bool {
        self.get(key).is_some()
    }

    /// Removes `key`, advancing the base past any leading vacated run so
    /// the ring stays proportional to the live window.
    pub fn remove(&mut self, key: &u64) -> Option<T> {
        let i = self.index(*key)?;
        let old = self.slots.get_mut(i)?.take();
        if old.is_some() {
            self.live -= 1;
        }
        while matches!(self.slots.front(), Some(None)) {
            self.slots.pop_front();
            self.base += 1;
        }
        old
    }

    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Values in ascending key order — the iteration order every f64
    /// interference sum and shard work partition depends on.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.slots.iter().filter_map(Option::as_ref)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_table_iterates_ascending_like_a_btreemap() {
        let mut t: DenseTable<&'static str> = DenseTable::default();
        for (i, v) in [(3u32, "c"), (0, "a"), (7, "d"), (1, "b")] {
            t.insert(NodeId(i), v);
        }
        let ids: Vec<u32> = t.keys().map(|n| n.0).collect();
        assert_eq!(ids, vec![0, 1, 3, 7]);
        let vals: Vec<&str> = t.values().copied().collect();
        assert_eq!(vals, vec!["a", "b", "c", "d"]);
        assert_eq!(t.len(), 4);
        assert_eq!(t.get(&NodeId(3)), Some(&"c"));
        assert_eq!(t.get(&NodeId(2)), None);
    }

    #[test]
    fn dense_table_remove_vacates_without_aliasing() {
        let mut t: DenseTable<u32> = DenseTable::default();
        t.insert(NodeId(0), 10);
        t.insert(NodeId(1), 11);
        assert_eq!(t.remove(&NodeId(0)), Some(10));
        assert_eq!(t.remove(&NodeId(0)), None, "double remove is a miss");
        assert_eq!(t.len(), 1);
        // A stale handle to the vacated slot stays a miss forever: ids are
        // never reused, so there is nothing to alias.
        assert_eq!(t.get(&NodeId(0)), None);
        assert!(!t.contains_key(&NodeId(0)));
        assert_eq!(t.keys().count(), 1);
    }

    #[test]
    fn node_table_flags_are_per_slot_and_reset_on_insert() {
        let mut t: NodeTable<u32> = NodeTable::default();
        t.insert(NodeId(2), 5);
        assert_eq!(t.flags(&NodeId(2)), 0);
        t.set_flag(&NodeId(2), FLAG_TRANSMITTING, true);
        t.set_flag(&NodeId(2), FLAG_MAC_SCHEDULED, true);
        assert_eq!(t.flags(&NodeId(2)), FLAG_TRANSMITTING | FLAG_MAC_SCHEDULED);
        t.set_flag(&NodeId(2), FLAG_TRANSMITTING, false);
        assert_eq!(t.flags(&NodeId(2)), FLAG_MAC_SCHEDULED);
        // Flags of a dead node read as 0 and writes are no-ops.
        t.remove(&NodeId(2));
        assert_eq!(t.flags(&NodeId(2)), 0);
        t.set_flag(&NodeId(2), FLAG_TRANSMITTING, true);
        assert_eq!(t.flags(&NodeId(2)), 0);
        // parts_mut hands out both halves together.
        t.insert(NodeId(0), 1);
        let (v, f) = t.parts_mut(&NodeId(0)).expect("live");
        *v = 9;
        *f |= FLAG_BUCKET_SCHEDULED;
        assert_eq!(t.get(&NodeId(0)), Some(&9));
        assert_eq!(t.flags(&NodeId(0)), FLAG_BUCKET_SCHEDULED);
    }

    #[test]
    fn seq_slab_window_advances_and_stale_keys_miss() {
        let mut s: SeqSlab<u64> = SeqSlab::default();
        for k in 0..5u64 {
            s.insert(k, k * 100);
        }
        assert_eq!(s.len(), 5);
        let vals: Vec<u64> = s.values().copied().collect();
        assert_eq!(vals, vec![0, 100, 200, 300, 400]);
        // Remove out of order: a hole, then the leading run collapses.
        assert_eq!(s.remove(&1), Some(100));
        assert_eq!(s.remove(&0), Some(0));
        assert_eq!(s.len(), 3);
        assert_eq!(s.get(&0), None, "pruned handle misses");
        assert_eq!(s.get(&1), None);
        assert_eq!(s.get(&2), Some(&200));
        let vals: Vec<u64> = s.values().copied().collect();
        assert_eq!(vals, vec![200, 300, 400], "ascending after base advance");
        // New inserts continue the monotone sequence.
        s.insert(5, 500);
        assert_eq!(s.get(&5), Some(&500));
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn seq_slab_removing_all_resets_window_to_empty() {
        let mut s: SeqSlab<&'static str> = SeqSlab::default();
        s.insert(0, "a");
        s.insert(1, "b");
        assert_eq!(s.remove(&0), Some("a"));
        assert_eq!(s.remove(&1), Some("b"));
        assert_eq!(s.len(), 0);
        assert_eq!(s.values().count(), 0);
        s.insert(2, "c");
        assert_eq!(s.get(&2), Some(&"c"));
        assert_eq!(s.remove(&2), Some("c"));
        assert_eq!(s.remove(&2), None);
    }
}
