//! The deterministic event queue at the heart of the kernel.

use crate::node::{NodeId, TimerId};
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum EventKind {
    /// Call `on_start` for a freshly added node.
    Start(NodeId),
    /// A node's MAC attempts to (re)start transmission. `deferred` is set on
    /// the second phase of the sense–defer–transmit sequence.
    MacTry {
        /// The transmitting node.
        node: NodeId,
        /// Whether the initial random defer has already been served.
        deferred: bool,
    },
    /// A transmission finishes; deliver to receivers.
    TxEnd(u64),
    /// The leaky bucket may release more frames.
    BucketDrain(NodeId),
    /// A timer (application or transport) fires.
    Timer {
        /// Owning node.
        node: NodeId,
        /// Timer identity within the node's table.
        id: TimerId,
    },
    /// A scheduled control closure (scenario orchestration) runs.
    Control(u64),
    /// Periodic transport garbage collection.
    Sweep,
}

#[derive(Debug)]
struct QueuedEvent {
    at: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for QueuedEvent {}

impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first; ties
        // break by insertion sequence for determinism.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered, insertion-stable event queue.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<QueuedEvent>,
    next_seq: u64,
}

impl EventQueue {
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` at time `at`.
    pub fn push(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(QueuedEvent { at, seq, kind });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, EventKind)> {
        self.heap.pop().map(|e| (e.at, e.kind))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), EventKind::Sweep);
        q.push(t(10), EventKind::Control(1));
        q.push(t(20), EventKind::Control(2));
        assert_eq!(q.pop().map(|e| e.0), Some(t(10)));
        assert_eq!(q.pop().map(|e| e.0), Some(t(20)));
        assert_eq!(q.pop().map(|e| e.0), Some(t(30)));
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(t(5), EventKind::Control(1));
        q.push(t(5), EventKind::Control(2));
        q.push(t(5), EventKind::Control(3));
        let order: Vec<_> = std::iter::from_fn(|| q.pop())
            .map(|(_, k)| match k {
                EventKind::Control(n) => n,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn peek_time_tracks_min() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(t(50), EventKind::Sweep);
        q.push(t(40), EventKind::Sweep);
        assert_eq!(q.peek_time(), Some(t(40)));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }
}
