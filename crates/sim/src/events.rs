//! The deterministic event queue at the heart of the kernel.
//!
//! Two interchangeable implementations sit behind one contract — pops are
//! ordered by `(time, insertion seq)` — selected at runtime by
//! [`Scheduler`] (mirroring the spatial-index pattern of DESIGN.md §7):
//!
//! * [`TimerWheel`] — the hierarchical timer wheel of DESIGN.md §11; O(1)
//!   amortized, the default.
//! * [`HeapQueue`] — the original `BinaryHeap`; O(log n), kept as the
//!   reference the wheel is differentially tested against. The
//!   `heap-queue` cargo feature makes it the default so CI can also gate
//!   digest equality across separately built binaries.
//!
//! The consuming API is `pop_until(horizon)` rather than peek + pop: a
//! timer wheel cannot compute its exact minimum without cascading, and
//! cascading must never advance the wheel clock past the kernel's run
//! horizon (see `wheel.rs`).

use crate::config::Scheduler;
use crate::wheel::TimerWheel;
use pds_core::SimTime;
use pds_core::{NodeId, TimerId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum EventKind {
    /// Call `on_start` for a freshly added node.
    Start(NodeId),
    /// A node's MAC attempts to (re)start transmission. `deferred` is set on
    /// the second phase of the sense–defer–transmit sequence.
    MacTry {
        /// The transmitting node.
        node: NodeId,
        /// Whether the initial random defer has already been served.
        deferred: bool,
    },
    /// A transmission finishes; deliver to receivers.
    TxEnd(u64),
    /// The leaky bucket may release more frames.
    BucketDrain(NodeId),
    /// A timer (application or transport) fires.
    Timer {
        /// Owning node.
        node: NodeId,
        /// Timer identity within the node's table.
        id: TimerId,
    },
    /// A scheduled control closure (scenario orchestration) runs.
    Control(u64),
    /// Periodic transport garbage collection.
    Sweep,
    /// A fault-delayed or fault-duplicated reception arrives (DST layer).
    /// Never scheduled unless a `FaultPlan` is installed, so faultless
    /// replay digests are untouched by the variant's existence.
    FaultDeliver(u64),
}

#[derive(Debug)]
struct QueuedEvent {
    at: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for QueuedEvent {}

impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first; ties
        // break by insertion sequence for determinism.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The reference binary-heap scheduler: earliest-time-first with
/// insertion-`seq` tie-breaking.
#[derive(Debug, Default)]
pub(crate) struct HeapQueue {
    heap: BinaryHeap<QueuedEvent>,
    next_seq: u64,
}

impl HeapQueue {
    fn push(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(QueuedEvent { at, seq, kind });
    }

    fn pop_until(&mut self, horizon: SimTime) -> Option<(SimTime, EventKind)> {
        if self.heap.peek()?.at > horizon {
            return None;
        }
        self.heap.pop().map(|e| (e.at, e.kind))
    }
}

/// A time-ordered, insertion-stable event queue.
#[derive(Debug)]
pub(crate) enum EventQueue {
    /// Hierarchical timer wheel (DESIGN.md §11).
    Wheel(TimerWheel<EventKind>),
    /// Reference binary heap.
    Heap(HeapQueue),
}

impl EventQueue {
    pub fn new(scheduler: Scheduler) -> Self {
        match scheduler {
            Scheduler::Wheel => Self::Wheel(TimerWheel::new()),
            Scheduler::BinaryHeap => Self::Heap(HeapQueue::default()),
        }
    }

    /// Schedules `kind` at time `at`.
    pub fn push(&mut self, at: SimTime, kind: EventKind) {
        match self {
            Self::Wheel(w) => w.push(at, kind),
            Self::Heap(h) => h.push(at, kind),
        }
    }

    /// Removes and returns the earliest event due at or before `horizon`,
    /// if any.
    pub fn pop_until(&mut self, horizon: SimTime) -> Option<(SimTime, EventKind)> {
        match self {
            Self::Wheel(w) => w.pop_until(horizon),
            Self::Heap(h) => h.pop_until(horizon),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match self {
            Self::Wheel(w) => w.len(),
            Self::Heap(h) => h.heap.len(),
        }
    }

    /// Whether no events are pending.
    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new(Scheduler::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_core::SimRng;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn both() -> [EventQueue; 2] {
        [
            EventQueue::new(Scheduler::Wheel),
            EventQueue::new(Scheduler::BinaryHeap),
        ]
    }

    fn drain(q: &mut EventQueue) -> Vec<(SimTime, EventKind)> {
        std::iter::from_fn(|| q.pop_until(SimTime::MAX)).collect()
    }

    #[test]
    fn pops_in_time_order() {
        for mut q in both() {
            q.push(t(30), EventKind::Sweep);
            q.push(t(10), EventKind::Control(1));
            q.push(t(20), EventKind::Control(2));
            let times: Vec<_> = drain(&mut q).into_iter().map(|e| e.0).collect();
            assert_eq!(times, vec![t(10), t(20), t(30)]);
            assert!(q.is_empty());
        }
    }

    #[test]
    fn ties_break_by_insertion_order() {
        for mut q in both() {
            q.push(t(5), EventKind::Control(1));
            q.push(t(5), EventKind::Control(2));
            q.push(t(5), EventKind::Control(3));
            let order: Vec<_> = drain(&mut q)
                .into_iter()
                .map(|(_, k)| match k {
                    EventKind::Control(n) => n,
                    other => panic!("unexpected {other:?}"),
                })
                .collect();
            assert_eq!(order, vec![1, 2, 3]);
        }
    }

    #[test]
    fn pop_until_respects_horizon() {
        for mut q in both() {
            assert_eq!(q.pop_until(SimTime::MAX), None);
            q.push(t(50), EventKind::Sweep);
            q.push(t(40), EventKind::Sweep);
            assert_eq!(q.pop_until(t(39)), None);
            assert_eq!(q.len(), 2);
            assert_eq!(q.pop_until(t(40)).map(|e| e.0), Some(t(40)));
            assert_eq!(q.len(), 1);
        }
    }

    /// The in-process differential gate: a kernel-shaped random workload
    /// (interleaved pushes with heavy same-tick ties, horizon-bounded pop
    /// phases, far-future sweeps) must pop identically from both
    /// implementations.
    #[test]
    fn wheel_and_heap_pop_identical_streams() {
        let mut rng = SimRng::new(0xE5E2);
        let [mut wheel, mut heap] = both();
        let mut frontier = 0u64;
        for round in 0..5000u64 {
            if rng.range_u64(0, 4) > 0 {
                let offset = match rng.range_u64(0, 12) {
                    0 => rng.range_u64(0, 1 << 37), // overflow tier
                    1..=3 => rng.range_u64(0, 500_000),
                    _ => rng.range_u64(0, 8), // same-tick ties
                };
                let at = t(frontier.saturating_add(offset));
                let kind = match round % 3 {
                    0 => EventKind::Control(round),
                    1 => EventKind::Sweep,
                    _ => EventKind::TxEnd(round),
                };
                wheel.push(at, kind.clone());
                heap.push(at, kind);
            } else {
                let horizon = t(frontier.saturating_add(rng.range_u64(0, 300_000)));
                loop {
                    let a = wheel.pop_until(horizon);
                    let b = heap.pop_until(horizon);
                    assert_eq!(a, b, "divergence at round {round}");
                    if a.is_none() {
                        break;
                    }
                }
                frontier = horizon.as_micros();
            }
        }
        assert_eq!(wheel.len(), heap.len());
        assert_eq!(drain(&mut wheel), drain(&mut heap));
    }
}
