//! Temporary event-loop profiler (feature-gated, dev only).
use std::cell::RefCell;

thread_local! {
    /// Per-thread (count, total nanoseconds) accumulators, one slot per
    /// event kind in declaration order.
    pub static PROF: RefCell<[(u64, u64); 7]> = const { RefCell::new([(0, 0); 7]) };
}

/// Prints the accumulated per-event-kind timings and resets them.
pub fn dump() {
    const NAMES: [&str; 7] = [
        "Start", "MacTry", "TxEnd", "Bucket", "Timer", "Ctrl", "Sweep",
    ];
    PROF.with(|p| {
        for (i, (n, ns)) in p.borrow().iter().enumerate() {
            if *n > 0 {
                println!(
                    "  {:8} n={:>8} total={:>8.3}s avg={:>7.0}ns",
                    NAMES[i],
                    n,
                    *ns as f64 / 1e9,
                    *ns as f64 / *n as f64
                );
            }
        }
        *p.borrow_mut() = [(0, 0); 7];
    });
}
