//! Event-loop and subsystem profiler (feature-gated, dev only).
//!
//! This module is the **only** place in the kernel that reads the host
//! wall clock. `World::dispatch` holds a [`DispatchTimer`] guard instead
//! of calling `Instant::now` itself, so the determinism lint can keep the
//! rest of the crate clock-free.
//!
//! Two accumulator families:
//!
//! - **per event kind** ([`DispatchTimer`]): where dispatch wall time
//!   goes, keyed by the kernel event being handled;
//! - **per subsystem** ([`ScopeTimer`]): wall time inside the spatial
//!   grid re-bucket sweep, the timer-wheel pop path, application engine
//!   callbacks, and the fault-injection delivery path — the axes the
//!   resource-profiling report slices by.
//!
//! [`dump`] takes the run's elapsed *virtual* time so each line can
//! report virtual-vs-wall throughput (simulated µs per wall ms): a
//! subsystem whose throughput collapses as `n` grows is the bottleneck.
//
// det-lint: allow(wall-clock) -- module is compiled only under the `prof` feature (cfg-gated in lib.rs); it profiles wall time by design and never feeds simulation state.

use crate::events::EventKind;
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    /// Per-thread (count, total nanoseconds) accumulators, one slot per
    /// event kind in declaration order.
    pub static PROF: RefCell<[(u64, u64); 8]> = const { RefCell::new([(0, 0); 8]) };
    /// Per-thread (count, total nanoseconds) accumulators, one slot per
    /// subsystem scope (`SCOPE_*` order).
    pub static SCOPES: RefCell<[(u64, u64); 4]> = const { RefCell::new([(0, 0); 4]) };
}

/// Subsystem slots for [`ScopeTimer`].
pub(crate) const SCOPE_GRID: usize = 0;
pub(crate) const SCOPE_WHEEL: usize = 1;
pub(crate) const SCOPE_ENGINE: usize = 2;
pub(crate) const SCOPE_FAULT: usize = 3;

/// The accumulator slot charged for dispatching `kind`.
pub(crate) fn slot_of(kind: &EventKind) -> usize {
    match kind {
        EventKind::Start(_) => 0,
        EventKind::MacTry { .. } => 1,
        EventKind::TxEnd(_) => 2,
        EventKind::BucketDrain(_) => 3,
        EventKind::Timer { .. } => 4,
        EventKind::Control(_) => 5,
        EventKind::Sweep => 6,
        EventKind::FaultDeliver(_) => 7,
    }
}

/// RAII guard that charges the wall-clock time between its construction
/// and drop to one event-kind slot.
pub(crate) struct DispatchTimer {
    slot: usize,
    t0: Instant,
}

impl DispatchTimer {
    /// Starts timing against `slot` (see [`slot_of`]).
    #[allow(clippy::disallowed_methods)]
    pub(crate) fn start(slot: usize) -> Self {
        Self {
            slot,
            t0: Instant::now(),
        }
    }
}

impl Drop for DispatchTimer {
    fn drop(&mut self) {
        let ns = self.t0.elapsed().as_nanos() as u64;
        PROF.with(|p| {
            let mut p = p.borrow_mut();
            p[self.slot].0 += 1;
            p[self.slot].1 += ns;
        });
    }
}

/// RAII guard that charges the wall-clock time between its construction
/// and drop to one subsystem slot (`SCOPE_*`).
pub(crate) struct ScopeTimer {
    slot: usize,
    t0: Instant,
}

impl ScopeTimer {
    /// Starts timing against `slot` (one of the `SCOPE_*` constants).
    #[allow(clippy::disallowed_methods)]
    pub(crate) fn start(slot: usize) -> Self {
        Self {
            slot,
            t0: Instant::now(),
        }
    }
}

impl Drop for ScopeTimer {
    fn drop(&mut self) {
        let ns = self.t0.elapsed().as_nanos() as u64;
        SCOPES.with(|s| {
            let mut s = s.borrow_mut();
            s[self.slot].0 += 1;
            s[self.slot].1 += ns;
        });
    }
}

/// Prints the accumulated per-event-kind and per-subsystem timings and
/// resets them. `virtual_us` is the run's elapsed simulated time, used
/// to report virtual-vs-wall throughput per subsystem.
pub fn dump(virtual_us: u64) {
    const NAMES: [&str; 8] = [
        "Start", "MacTry", "TxEnd", "Bucket", "Timer", "Ctrl", "Sweep", "Fault",
    ];
    PROF.with(|p| {
        for (i, (n, ns)) in p.borrow().iter().enumerate() {
            if *n > 0 {
                println!(
                    "  {:8} n={:>8} total={:>8.3}s avg={:>7.0}ns",
                    NAMES[i],
                    n,
                    *ns as f64 / 1e9,
                    *ns as f64 / *n as f64
                );
            }
        }
        *p.borrow_mut() = [(0, 0); 8];
    });
    const SCOPE_NAMES: [&str; 4] = ["grid", "wheel", "engine", "fault"];
    SCOPES.with(|s| {
        for (i, (n, ns)) in s.borrow().iter().enumerate() {
            if *n > 0 {
                // simulated µs advanced per wall ms spent inside this
                // subsystem: the virtual-vs-wall throughput axis.
                let virt_per_wall_ms = virtual_us as f64 / (*ns as f64 / 1e6);
                println!(
                    "  scope {:6} n={:>8} wall={:>8.3}s virt/wall={:>10.0} us/ms",
                    SCOPE_NAMES[i],
                    n,
                    *ns as f64 / 1e9,
                    virt_per_wall_ms
                );
            }
        }
        *s.borrow_mut() = [(0, 0); 4];
    });
}
