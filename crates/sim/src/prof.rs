//! Temporary event-loop profiler (feature-gated, dev only).
//!
//! This module is the **only** place in the kernel that reads the host
//! wall clock. `World::dispatch` holds a [`DispatchTimer`] guard instead
//! of calling `Instant::now` itself, so the determinism lint can keep the
//! rest of the crate clock-free.
//
// det-lint: allow(wall-clock) -- module is compiled only under the `prof` feature (cfg-gated in lib.rs); it profiles wall time by design and never feeds simulation state.

use crate::events::EventKind;
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    /// Per-thread (count, total nanoseconds) accumulators, one slot per
    /// event kind in declaration order.
    pub static PROF: RefCell<[(u64, u64); 7]> = const { RefCell::new([(0, 0); 7]) };
}

/// The accumulator slot charged for dispatching `kind`.
pub(crate) fn slot_of(kind: &EventKind) -> usize {
    match kind {
        EventKind::Start(_) => 0,
        EventKind::MacTry { .. } => 1,
        EventKind::TxEnd(_) => 2,
        EventKind::BucketDrain(_) => 3,
        EventKind::Timer { .. } => 4,
        EventKind::Control(_) => 5,
        EventKind::Sweep => 6,
    }
}

/// RAII guard that charges the wall-clock time between its construction
/// and drop to one event-kind slot.
pub(crate) struct DispatchTimer {
    slot: usize,
    t0: Instant,
}

impl DispatchTimer {
    /// Starts timing against `slot` (see [`slot_of`]).
    #[allow(clippy::disallowed_methods)]
    pub(crate) fn start(slot: usize) -> Self {
        Self {
            slot,
            t0: Instant::now(),
        }
    }
}

impl Drop for DispatchTimer {
    fn drop(&mut self) {
        let ns = self.t0.elapsed().as_nanos() as u64;
        PROF.with(|p| {
            let mut p = p.borrow_mut();
            p[self.slot].0 += 1;
            p[self.slot].1 += ns;
        });
    }
}

/// Prints the accumulated per-event-kind timings and resets them.
pub fn dump() {
    const NAMES: [&str; 7] = [
        "Start", "MacTry", "TxEnd", "Bucket", "Timer", "Ctrl", "Sweep",
    ];
    PROF.with(|p| {
        for (i, (n, ns)) in p.borrow().iter().enumerate() {
            if *n > 0 {
                println!(
                    "  {:8} n={:>8} total={:>8.3}s avg={:>7.0}ns",
                    NAMES[i],
                    n,
                    *ns as f64 / 1e9,
                    *ns as f64 / *n as f64
                );
            }
        }
        *p.borrow_mut() = [(0, 0); 7];
    });
}
