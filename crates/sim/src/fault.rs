//! Deterministic adversarial fault injection at the radio seam (DST).
//!
//! A [`FaultPlan`] describes *wire-level* adversity — extra frame drops,
//! duplicated deliveries, delayed (and therefore reordered) deliveries,
//! time-windowed link partitions, and byzantine-silent senders — plus
//! *scenario-level* churn storms that harnesses apply through scheduled
//! control closures (the kernel cannot construct applications, so mass
//! leave/join bursts are data here and actions in `pds-dst`).
//!
//! The determinism contract of DESIGN.md §8 is preserved by construction:
//!
//! * Every probabilistic fault decision consumes a **plan-owned** rng
//!   stream seeded from [`FaultPlan::seed`], never the kernel stream, so a
//!   run with a no-op plan installed dispatches the exact event stream —
//!   and replay digest — of a run with no plan at all.
//! * Partition and silence checks are pure time/id predicates (no rng).
//! * Delayed and duplicated deliveries travel through the ordinary event
//!   queue as `FaultDeliver` events, so they are folded into the replay
//!   digest and replay identically across schedulers and spatial indexes.
//! * With no plan installed the delivery path pays a single
//!   `Option::is_some` branch (mirroring the trace-sink pattern), gated by
//!   the no-fault overhead check in `sim_scale --fault-check`.

use crate::radio::Frame;
use pds_core::NodeId;
use pds_core::SimRng;
use pds_core::{SimDuration, SimTime};
use pds_det::DetMap;

/// A time window during which the node set is split in two and frames
/// crossing the split are cut (both directions). Healing is implicit:
/// outside `[from, until)` the link behaves normally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionWindow {
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive) — the partition heals here.
    pub until: SimTime,
    /// Nodes with id `< boundary` form one side, the rest the other.
    pub boundary: u32,
}

impl PartitionWindow {
    /// Whether a frame from `s` to `r` at `now` crosses the cut.
    #[must_use]
    pub fn cuts(&self, s: NodeId, r: NodeId, now: SimTime) -> bool {
        self.from <= now && now < self.until && (s.0 < self.boundary) != (r.0 < self.boundary)
    }
}

/// A time window during which one node is byzantine-silent: it keeps
/// transmitting (occupying airtime, colliding with others) but none of its
/// frames are ever received.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SilenceWindow {
    /// The silenced transmitter.
    pub node: u32,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
}

impl SilenceWindow {
    /// Whether frames sent by `s` at `now` are suppressed.
    #[must_use]
    pub fn silences(&self, s: NodeId, now: SimTime) -> bool {
        self.node == s.0 && self.from <= now && now < self.until
    }
}

/// A mass leave/join burst. The kernel carries this as plan data only; DST
/// harnesses turn it into `World::schedule` closures (removing `leave`
/// nodes at `at` and re-adding fresh ones `rejoin_after` later when
/// `rejoin` is set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnStorm {
    /// When the burst strikes.
    pub at: SimTime,
    /// How many nodes leave at once.
    pub leave: u32,
    /// Whether replacements join afterwards.
    pub rejoin: bool,
    /// Delay before replacements join (ignored unless `rejoin`).
    pub rejoin_after: SimDuration,
}

/// A complete deterministic fault schedule for one run.
///
/// Identical (world seed, plan) pairs replay identically; the plan's own
/// `seed` feeds every probabilistic fault decision.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the plan-owned rng stream (independent of the world seed).
    pub seed: u64,
    /// Extra per-reception drop probability, on top of natural losses.
    pub drop_prob: f64,
    /// Probability a received frame is *also* re-delivered later.
    pub dup_prob: f64,
    /// Probability a received frame is delayed instead of delivered now
    /// (delays reorder it against every frame in between).
    pub delay_prob: f64,
    /// Upper bound of the uniform extra delivery delay.
    pub delay_max: SimDuration,
    /// Link-level partitions (with implicit heal at each window end).
    pub partitions: Vec<PartitionWindow>,
    /// Byzantine-silent transmitter windows.
    pub silences: Vec<SilenceWindow>,
    /// Churn storms, applied by harnesses (see [`ChurnStorm`]).
    pub storms: Vec<ChurnStorm>,
}

impl FaultPlan {
    /// A plan that injects nothing. Installing it must leave replay
    /// digests and statistics bit-identical to running with no plan.
    #[must_use]
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            drop_prob: 0.0,
            dup_prob: 0.0,
            delay_prob: 0.0,
            delay_max: SimDuration::from_millis(200),
            partitions: Vec::new(),
            silences: Vec::new(),
            storms: Vec::new(),
        }
    }

    /// Whether this plan can ever perturb the wire.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.drop_prob <= 0.0
            && self.dup_prob <= 0.0
            && self.delay_prob <= 0.0
            && self.partitions.is_empty()
            && self.silences.is_empty()
    }

    /// Whether a frame from `s` to `r` at `now` is cut by a partition or a
    /// silence window (pure predicate; consumes no randomness).
    #[must_use]
    pub fn cuts(&self, s: NodeId, r: NodeId, now: SimTime) -> bool {
        self.silences.iter().any(|w| w.silences(s, now))
            || self.partitions.iter().any(|w| w.cuts(s, r, now))
    }
}

/// A reception diverted off the immediate delivery path, waiting on its
/// `FaultDeliver` event.
#[derive(Debug)]
pub(crate) struct PendingDelivery {
    pub receiver: NodeId,
    /// Originating transmission id (for tracing).
    pub tx: u64,
    pub frame: Frame,
}

/// Kernel-side state of an installed [`FaultPlan`].
#[derive(Debug)]
pub(crate) struct FaultState {
    pub plan: FaultPlan,
    /// The plan-owned rng stream. Never forked from the world rng, so
    /// installing a plan cannot perturb kernel randomness.
    rng: SimRng,
    pub pending: DetMap<u64, PendingDelivery>,
    next_pending: u64,
}

impl FaultState {
    pub fn new(plan: FaultPlan) -> Self {
        let rng = SimRng::new(plan.seed);
        Self {
            plan,
            rng,
            pending: DetMap::default(),
            next_pending: 0,
        }
    }

    /// Rolls the extra-drop fault for one reception.
    pub fn roll_drop(&mut self) -> bool {
        self.plan.drop_prob > 0.0 && self.rng.chance(self.plan.drop_prob)
    }

    /// Rolls the delay fault; `Some(at)` diverts the reception to `at`.
    pub fn roll_delay(&mut self, now: SimTime) -> Option<SimTime> {
        if self.plan.delay_prob > 0.0 && self.rng.chance(self.plan.delay_prob) {
            Some(now + self.extra_delay())
        } else {
            None
        }
    }

    /// Rolls the duplicate fault; `Some(at)` schedules a second delivery
    /// at `at` in addition to the immediate one.
    pub fn roll_dup(&mut self, now: SimTime) -> Option<SimTime> {
        if self.plan.dup_prob > 0.0 && self.rng.chance(self.plan.dup_prob) {
            Some(now + self.extra_delay())
        } else {
            None
        }
    }

    fn extra_delay(&mut self) -> SimDuration {
        let hi = self.plan.delay_max.as_micros().max(1);
        SimDuration::from_micros(self.rng.range_u64(1, hi + 1))
    }

    /// Registers a diverted reception; the caller schedules the returned
    /// id's `FaultDeliver` event.
    pub fn enqueue(&mut self, receiver: NodeId, tx: u64, frame: Frame) -> u64 {
        let id = self.next_pending;
        self.next_pending += 1;
        self.pending.insert(
            id,
            PendingDelivery {
                receiver,
                tx,
                frame,
            },
        );
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn partition_cuts_only_across_boundary_inside_window() {
        let w = PartitionWindow {
            from: t(1.0),
            until: t(2.0),
            boundary: 4,
        };
        assert!(w.cuts(NodeId(0), NodeId(7), t(1.5)));
        assert!(w.cuts(NodeId(7), NodeId(0), t(1.0)));
        assert!(!w.cuts(NodeId(0), NodeId(3), t(1.5)), "same side");
        assert!(!w.cuts(NodeId(0), NodeId(7), t(0.5)), "before window");
        assert!(!w.cuts(NodeId(0), NodeId(7), t(2.0)), "healed");
    }

    #[test]
    fn silence_suppresses_one_sender_in_window() {
        let w = SilenceWindow {
            node: 3,
            from: t(0.0),
            until: t(5.0),
        };
        assert!(w.silences(NodeId(3), t(4.9)));
        assert!(!w.silences(NodeId(2), t(4.9)));
        assert!(!w.silences(NodeId(3), t(5.0)));
    }

    #[test]
    fn noop_plan_is_noop_and_storms_do_not_count() {
        let mut p = FaultPlan::none(9);
        assert!(p.is_noop());
        p.storms.push(ChurnStorm {
            at: t(1.0),
            leave: 3,
            rejoin: true,
            rejoin_after: SimDuration::from_secs(2),
        });
        assert!(p.is_noop(), "storms are harness-side, not wire-side");
        p.drop_prob = 0.1;
        assert!(!p.is_noop());
    }

    #[test]
    fn rolls_are_deterministic_per_seed() {
        let mut plan = FaultPlan::none(42);
        plan.drop_prob = 0.5;
        plan.delay_prob = 0.3;
        let mut a = FaultState::new(plan.clone());
        let mut b = FaultState::new(plan);
        for _ in 0..200 {
            assert_eq!(a.roll_drop(), b.roll_drop());
            assert_eq!(a.roll_delay(t(1.0)), b.roll_delay(t(1.0)));
        }
    }

    #[test]
    fn zero_probability_rolls_consume_no_rng() {
        // A no-op plan must leave its rng untouched so the guard in
        // `roll_*` is airtight; drop_prob == 0 short-circuits.
        let mut s = FaultState::new(FaultPlan::none(7));
        for _ in 0..100 {
            assert!(!s.roll_drop());
            assert!(s.roll_delay(t(0.0)).is_none());
            assert!(s.roll_dup(t(0.0)).is_none());
        }
        let mut fresh = SimRng::new(7);
        assert_eq!(s.rng.next_u64(), fresh.next_u64(), "stream unconsumed");
    }
}
