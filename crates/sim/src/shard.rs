//! Spatial sharding: deterministic intra-run parallel stepping.
//!
//! Sweeps already parallelize across runs; this module parallelizes
//! *within* one run without touching the replay contract. The arena is
//! partitioned into shards by striping the [`NodeGrid`] cell x-coordinate
//! of each transmission's start position. Within a conservative lookahead
//! window (one maximum frame airtime — no transmission that starts after
//! `now` can end before `now + max_airtime`, and radio propagation is
//! instantaneous, so the window bounds everything the physical layer can
//! still learn about), a scoped worker pool precomputes, per transmission
//! ending inside the window, the **physical receive verdict** of every
//! in-range receiver: half-duplex, collided, or survivor.
//!
//! The verdict function [`phys_verdicts`] is pure over world state that
//! is frozen for the window unless an invalidating action occurs (node
//! add/remove/move/teleport, or a new transmission starting nearby).
//! [`World`](crate::World) tags each cached verdict with a state
//! fingerprint (motion epoch, transmission-start log mark, drift pad) and
//! recomputes inline whenever the fingerprint no longer holds — so a
//! cached verdict is used only when it is provably equal to what the
//! sequential path would compute.
//!
//! Every random draw — baseline loss, fault rolls, MAC defers, ACK jitter
//! — stays on the sequential commit path in ascending-receiver order, and
//! shard workers never touch the event queue, stats, rng, or trace sink.
//! Replay digests and [`Stats`](crate::Stats) are therefore bit-identical
//! for any shard count, by construction rather than by synchronization:
//! cross-shard radio events need no boundary merge because their commit
//! order *is* the sequential `(time, seq)` dispatch order.

use crate::config::{RadioConfig, SimConfig, SpatialIndex};
use crate::radio::{Motion, Position, Transmission};
use crate::slab::{DenseTable, SeqSlab};
use crate::spatial::{cell_of, NodeGrid, TxEntry, TxGrid};
use pds_core::{NodeId, SimDuration};

/// Physical receive verdict for one in-range receiver of a transmission.
/// Everything that consumes randomness (baseline loss, fault rolls)
/// happens later, on the sequential commit path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PhysOutcome {
    /// The receiver was transmitting an overlapping frame of its own.
    HalfDuplex,
    /// Interference beat the capture threshold at this receiver.
    Collided,
    /// Survived the physical layer; loss and fault rolls decide the rest.
    Survivor,
}

/// Borrowed, `Sync` view of exactly the world state [`phys_verdicts`]
/// reads. Constructible both from `&World` (inline recompute) and from a
/// disjoint-field destructure (shard rounds, where the remaining `World`
/// fields hold non-`Sync` application boxes).
#[derive(Clone, Copy)]
pub(crate) struct PhysArgs<'a> {
    pub config: &'a SimConfig,
    /// Motions of all alive nodes, keyed identically to the node table.
    pub motions: &'a DenseTable<Motion>,
    pub transmissions: &'a SeqSlab<Transmission>,
    /// Live transmission ids per sender, indexed by raw node id (empty
    /// lists for nodes that are not transmitting).
    pub tx_by_sender: &'a [Vec<u64>],
    pub node_grid: &'a NodeGrid,
    pub tx_grid: &'a TxGrid,
}

/// Reusable candidate buffers for [`phys_verdicts`] — hot-path
/// allocations otherwise. Each worker owns one; the world keeps one for
/// inline recomputes.
#[derive(Debug, Default)]
pub(crate) struct PhysScratch {
    /// Receiver candidates from the node grid.
    pub cands_nodes: Vec<(NodeId, Motion)>,
    /// Interferer candidates from the transmission grid.
    pub cands_tx: Vec<TxEntry>,
    /// Deduplicated receivers with evaluated positions.
    pub receivers: Vec<(NodeId, Position)>,
    /// Deduplicated interferers with start positions.
    pub interferers: Vec<(NodeId, Position)>,
}

/// A verdict list precomputed by a shard round, plus the fingerprint of
/// the world state it was computed against.
#[derive(Debug)]
pub(crate) struct CachedVerdict {
    /// [`World::motion_epoch`](crate::World) at the round; any node
    /// add/remove/move/teleport since then invalidates the entry.
    pub epoch: u64,
    /// Absolute index into the transmission-start log at the round; log
    /// entries at or past this mark are the transmissions that started
    /// after the verdict was computed and must be checked for overlap.
    pub log_mark: u64,
    /// Maximum distance any in-flight walker can have drifted over the
    /// lookahead window (`max_speed × lookahead`), used to pad the
    /// half-duplex invalidation radius.
    pub pad_m: f64,
    /// In-range receivers in ascending id order with their outcomes.
    pub verdicts: Vec<(NodeId, PhysOutcome)>,
}

/// The conservative lookahead window: the airtime of the largest frame.
/// A transmission that starts at or after `now` occupies the air for at
/// most this long, so precomputing only ends within `(now, now + Δ]`
/// bounds how much any yet-unseen transmission can invalidate.
pub(crate) fn lookahead(radio: &RadioConfig) -> SimDuration {
    radio.frame_airtime(radio.max_frame_bytes)
}

/// Shard owning position `pos`: stripes of node-grid columns, assigned
/// round-robin by cell x-coordinate. Striping (rather than block
/// partitioning) balances clustered layouts without knowing arena bounds.
pub(crate) fn shard_of(pos: Position, cell_m: f64, shards: u32) -> u32 {
    let (cx, _) = cell_of(pos, cell_m);
    let n = i64::from(shards.max(1));
    // rem_euclid keeps negative columns in range.
    (cx.rem_euclid(n)) as u32
}

/// Computes the physical receive verdicts of `tx`, evaluated at its end
/// time, into `out` in ascending receiver-id order.
///
/// This is a pure transcription of the sequential `tx_end` decision
/// logic: same candidate enumeration per [`SpatialIndex`] mode, same
/// sort/dedup, same exact-range filters, and the same f64 interference
/// summation order — so two calls over equal state produce bit-identical
/// verdicts no matter which thread runs them.
pub(crate) fn phys_verdicts(
    a: &PhysArgs<'_>,
    tx: &Transmission,
    out: &mut Vec<(NodeId, PhysOutcome)>,
    scratch: &mut PhysScratch,
) {
    // `tx_end` dispatches exactly at the transmission's end time, so every
    // position below is evaluated at `tx.end`.
    let at = tx.end;
    let radio = &a.config.radio;
    let range = radio.range_m;
    let tx_pos = tx.start_pos;
    // Candidates must come out ascending by id in both index modes: the
    // per-receiver rng rolls at commit consume the shared stream, so
    // receiver *order* is part of the replay contract.
    let receivers = &mut scratch.receivers;
    receivers.clear();
    match a.config.spatial.index {
        SpatialIndex::BruteForce => receivers.extend(
            a.motions
                .iter()
                .filter(|&(r, _)| r != tx.sender)
                .map(|(r, m)| (r, m.position(at))),
        ),
        SpatialIndex::Grid => {
            let cands = &mut scratch.cands_nodes;
            cands.clear();
            a.node_grid.query_into(tx_pos, range, at, cands);
            cands.sort_unstable_by_key(|&(r, _)| r);
            cands.dedup_by_key(|&mut (r, _)| r);
            receivers.extend(
                cands
                    .iter()
                    .filter(|&&(r, _)| r != tx.sender)
                    .map(|&(r, m)| (r, m.position(at))),
            );
        }
    }
    let path_loss = radio.path_loss_exp;
    let capture = radio.capture_sinr;
    let trunc = range * radio.interference_range_factor;
    // Received power at distance d, with a 1 m reference floor.
    let power = |d: f64| d.max(1.0).powf(-path_loss);
    // Everything that could interfere with this frame at *some* receiver,
    // in ascending id order (f64 addition is not associative; the exact
    // per-receiver sum order is part of the replay contract).
    let keep =
        |t: &Transmission| t.id != tx.id && t.sender != tx.sender && t.overlaps(tx.start, tx.end);
    let interferers = &mut scratch.interferers;
    interferers.clear();
    if a.config.spatial.index == SpatialIndex::Grid && trunc.is_finite() {
        let cands = &mut scratch.cands_tx;
        cands.clear();
        a.tx_grid.query_into(tx_pos, trunc + range, cands);
        cands.sort_unstable_by_key(|t| t.id);
        cands.dedup_by_key(|t| t.id);
        interferers.extend(
            cands
                .iter()
                .filter(|t| {
                    t.id != tx.id && t.sender != tx.sender && t.start < tx.end && tx.start < t.end
                })
                .map(|t| (t.sender, t.pos)),
        );
    } else {
        interferers.extend(
            a.transmissions
                .values()
                .filter(|t| keep(t))
                .map(|t| (t.sender, t.start_pos)),
        );
    }
    for &(r, rpos) in scratch.receivers.iter() {
        if tx_pos.distance(&rpos) > range {
            continue;
        }
        let half_duplex = a.tx_by_sender.get(r.0 as usize).is_some_and(|ids| {
            ids.iter().any(|tid| {
                a.transmissions
                    .get(tid)
                    .is_some_and(|t| t.overlaps(tx.start, tx.end))
            })
        });
        if half_duplex {
            out.push((r, PhysOutcome::HalfDuplex));
            continue;
        }
        let interference: f64 = scratch
            .interferers
            .iter()
            .filter(|&&(s, _)| s != r)
            .map(|&(_, p)| p.distance(&rpos))
            .filter(|&d| d <= trunc)
            .map(power)
            .sum();
        if interference > 0.0 && power(tx_pos.distance(&rpos)) < capture * interference {
            out.push((r, PhysOutcome::Collided));
            continue;
        }
        out.push((r, PhysOutcome::Survivor));
    }
}

/// One precomputed result: the transmission id and its ordered
/// per-receiver verdict list.
pub(crate) type TxVerdicts = (u64, Vec<(NodeId, PhysOutcome)>);

/// Runs one shard round: each worker computes the verdict lists for its
/// stripe of pending transmissions. Workers are observation-only — they
/// read the shared [`PhysArgs`] snapshot and return data; the caller
/// inserts results into the cache on the main thread, so cross-thread
/// scheduling can never reorder anything observable.
pub(crate) fn compute_sharded(a: &PhysArgs<'_>, work: &[Vec<u64>]) -> Vec<Vec<TxVerdicts>> {
    // The determinism lint bans threads in the simulation kernel; this is
    // the audited exception it names. Scoped workers only evaluate the
    // pure `phys_verdicts` function over a frozen `Sync` snapshot — no
    // rng, stats, queue, or trace access — so results are independent of
    // thread scheduling and the join order below is fixed by shard index.
    // lint: allow(thread-pool) -- audited shard executor: workers run the pure verdict function over a frozen snapshot and results merge in fixed shard order; see DESIGN.md §15.
    std::thread::scope(|s| {
        let handles: Vec<_> = work
            .iter()
            .map(|ids| {
                s.spawn(move || {
                    let mut scratch = PhysScratch::default();
                    let mut done = Vec::with_capacity(ids.len());
                    for id in ids {
                        let Some(tx) = a.transmissions.get(id) else {
                            continue;
                        };
                        let mut out = Vec::new();
                        phys_verdicts(a, tx, &mut out, &mut scratch);
                        done.push((*id, out));
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookahead_is_the_largest_frame_airtime() {
        let r = RadioConfig::default();
        // 1500 B at 12 Mbps = 1 ms, plus 0.3 ms overhead.
        assert_eq!(lookahead(&r).as_micros(), 1300);
        assert_eq!(lookahead(&r), r.frame_airtime(r.max_frame_bytes));
    }

    #[test]
    fn shard_assignment_stripes_by_cell_column() {
        let cell = 75.0;
        // Same column, different rows: same shard.
        let a = shard_of(Position { x: 10.0, y: 0.0 }, cell, 4);
        let b = shard_of(Position { x: 10.0, y: 500.0 }, cell, 4);
        assert_eq!(a, b);
        // Adjacent columns go to adjacent shards.
        let c = shard_of(
            Position {
                x: 10.0 + cell,
                y: 0.0,
            },
            cell,
            4,
        );
        assert_eq!(c, (a + 1) % 4);
    }

    #[test]
    fn shard_assignment_at_cell_boundaries() {
        let cell = 75.0;
        // x = cell_m is the first point of column 1, not column 0 —
        // matching `cell_of`'s floor semantics exactly.
        let s0 = shard_of(Position { x: 74.999, y: 0.0 }, cell, 2);
        let s1 = shard_of(Position { x: 75.0, y: 0.0 }, cell, 2);
        assert_ne!(s0, s1);
        // Negative columns stay in range (rem_euclid, not %).
        for shards in [1u32, 2, 3, 4, 8] {
            for x in [-1000.0, -75.0, -0.001, 0.0, 74.999, 75.0, 1000.0] {
                let s = shard_of(Position { x, y: 0.0 }, cell, shards);
                assert!(s < shards, "shard {s} out of range for {shards} shards");
            }
        }
        // x = -0.001 is column -1 → last shard; x = 0.0 is column 0.
        assert_eq!(shard_of(Position { x: -0.001, y: 0.0 }, cell, 4), 3);
        assert_eq!(shard_of(Position { x: 0.0, y: 0.0 }, cell, 4), 0);
    }

    #[test]
    fn zero_shards_is_treated_as_one() {
        assert_eq!(shard_of(Position { x: 300.0, y: 0.0 }, 75.0, 0), 0);
    }
}
