//! Hierarchical timer wheel — the O(1)-amortized scheduler behind the
//! kernel's event queue (DESIGN.md §11).
//!
//! Six hashed wheel levels of 64 slots each cover the next 64⁶ µs (~19.1 h
//! of simulated time) at 1 µs resolution; anything farther is parked in a
//! sorted overflow tier and promoted into the wheel when its window opens.
//! The structure reproduces the exact pop order of a binary heap keyed on
//! `(time, insertion seq)`:
//!
//! * **Earliest-time-first** — the first occupied slot of the first
//!   occupied level always holds the globally earliest deadline, because
//!   every level-`k` candidate deadline is strictly below every deadline
//!   still parked at level `k+1` or in the overflow tier.
//! * **Insertion-stable ties** — a slot is a FIFO: pushes append, and
//!   cascades (which re-place a whole expired slot one or more levels
//!   down) preserve relative order. Level selection uses the tokio-style
//!   XOR rule — an entry lands at the level of the *highest* 6-bit group
//!   in which its deadline differs from the wheel's current time — which
//!   guarantees the cascade for a time window always completes before any
//!   later push can land directly inside that window. Together these make
//!   same-tick events pop in push order even across cascades.
//!
//! There is deliberately no `peek`: computing the exact next deadline may
//! require cascading, and cascading advances the wheel's internal clock —
//! which must never move past the caller's horizon, or a later push at a
//! time the kernel considers "future" would be in the wheel's past. The
//! consuming API is [`TimerWheel::pop_until`], which only cascades windows
//! whose deadline lies at or before the horizon.

use pds_core::SimTime;
use std::collections::{BTreeMap, VecDeque};

/// log2 of the slot count per level.
const SLOT_BITS: u32 = 6;
/// Slots per wheel level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Mask selecting a slot index from a deadline.
const SLOT_MASK: u64 = SLOTS as u64 - 1;
/// Number of wheel levels.
const LEVELS: usize = 6;
/// Ticks (µs) covered by the wheel proper: 64⁶ = 2³⁶ µs ≈ 19.1 hours.
/// Deadlines farther than this from the wheel clock go to the overflow
/// tier.
const WHEEL_SPAN: u64 = 1 << (SLOT_BITS * LEVELS as u32);

#[derive(Debug)]
struct Entry<T> {
    at: u64,
    seq: u64,
    value: T,
}

#[derive(Debug)]
struct Level<T> {
    /// Bit `s` set ⇔ `slots[s]` is non-empty.
    occupied: u64,
    slots: [VecDeque<Entry<T>>; SLOTS],
}

impl<T> Level<T> {
    fn new() -> Self {
        Self {
            occupied: 0,
            slots: std::array::from_fn(|_| VecDeque::new()),
        }
    }

    /// The FIFO queue for `slot`. The single audited indexing site of the
    /// per-level slot array.
    fn slot_mut(&mut self, slot: usize) -> &mut VecDeque<Entry<T>> {
        // lint: allow(panic) -- every caller derives `slot` by masking with SLOT_MASK, which is < SLOTS
        &mut self.slots[slot]
    }
}

/// A deterministic hierarchical timer wheel.
///
/// Pops values in `(time, insertion order)` order — bit-identical to a
/// `BinaryHeap` keyed on `(time, push seq)` — with O(1) amortized pushes
/// and pops. Scheduling in the past (before the last popped deadline) is a
/// kernel contract violation; the wheel clamps such deadlines to its clock
/// in release builds and asserts in debug builds.
#[derive(Debug)]
pub struct TimerWheel<T> {
    /// The wheel clock: never ahead of any pending deadline, never behind
    /// any popped one. Advances only inside [`Self::pop_until`], and only
    /// up to the caller's horizon.
    elapsed: u64,
    levels: Box<[Level<T>; LEVELS]>,
    /// Far-future entries, sorted by `(deadline, seq)`; promoted into the
    /// wheel one 64⁶-µs window at a time.
    overflow: BTreeMap<(u64, u64), T>,
    next_seq: u64,
    len: usize,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimerWheel<T> {
    /// An empty wheel with its clock at time zero.
    #[must_use]
    pub fn new() -> Self {
        Self {
            elapsed: 0,
            levels: Box::new(std::array::from_fn(|_| Level::new())),
            overflow: BTreeMap::new(),
            next_seq: 0,
            len: 0,
        }
    }

    /// Number of pending entries (wheel levels + overflow tier).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The wheel level at `index`. The single audited indexing site of the
    /// level array.
    fn level_mut(&mut self, index: usize) -> &mut Level<T> {
        // lint: allow(panic) -- `index` comes from the XOR rule or a tier scan, both bounded by LEVELS
        &mut self.levels[index]
    }

    /// Schedules `value` at time `at`.
    pub fn push(&mut self, at: SimTime, value: T) {
        let at = at.as_micros();
        debug_assert!(
            at >= self.elapsed,
            "scheduled {at} µs in the past (wheel clock {} µs)",
            self.elapsed
        );
        let at = at.max(self.elapsed);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        self.place(at, seq, value);
    }

    /// Removes and returns the earliest entry whose deadline is `<=
    /// horizon`, or `None` if none is due. Never advances the wheel clock
    /// past `horizon`, so pushes at any time `>= horizon` remain valid
    /// between calls.
    pub fn pop_until(&mut self, horizon: SimTime) -> Option<(SimTime, T)> {
        let horizon = horizon.as_micros();
        loop {
            let (tier, deadline) = self.next_ready()?;
            if deadline > horizon {
                return None;
            }
            self.elapsed = deadline;
            if tier == 0 {
                // Level-0 slots hold exactly one tick, so the FIFO front is
                // the global `(time, seq)` minimum.
                let slot = (deadline & SLOT_MASK) as usize;
                let Some(entry) = self.level_mut(0).slot_mut(slot).pop_front() else {
                    // An occupancy bit with an empty queue cannot happen by
                    // construction; self-heal the bitmap rather than panic.
                    debug_assert!(false, "stale occupancy bit at level 0 slot {slot}");
                    self.level_mut(0).occupied &= !(1 << slot);
                    continue;
                };
                debug_assert_eq!(entry.at, deadline);
                let level = self.level_mut(0);
                if level.slot_mut(slot).is_empty() {
                    level.occupied &= !(1 << slot);
                }
                self.len -= 1;
                return Some((SimTime::from_micros(entry.at), entry.value));
            } else if tier < LEVELS {
                // Cascade: the expired slot's window has opened. Re-place
                // its entries in FIFO order; each lands strictly below
                // `tier` because its deadline now agrees with the wheel
                // clock on every 6-bit group at or above `tier`.
                let shift = SLOT_BITS * tier as u32;
                let slot = ((deadline >> shift) & SLOT_MASK) as usize;
                let mut queue = std::mem::take(self.level_mut(tier).slot_mut(slot));
                self.level_mut(tier).occupied &= !(1 << slot);
                for entry in queue.drain(..) {
                    self.place(entry.at, entry.seq, entry.value);
                }
                // Hand the drained buffer back so steady-state cascades
                // reuse its capacity instead of reallocating.
                *self.level_mut(tier).slot_mut(slot) = queue;
            } else {
                // Promote the overflow window that just opened. BTreeMap
                // iteration is `(deadline, seq)`-sorted, which `place`
                // preserves within each slot.
                let batch = match deadline.checked_add(WHEEL_SPAN) {
                    Some(end) => {
                        let rest = self.overflow.split_off(&(end, 0));
                        std::mem::replace(&mut self.overflow, rest)
                    }
                    // Window ends beyond u64::MAX: everything left is in it.
                    None => std::mem::take(&mut self.overflow),
                };
                for ((at, seq), value) in batch {
                    self.place(at, seq, value);
                }
            }
        }
    }

    /// Files an entry under the level/slot (or overflow tier) its deadline
    /// selects relative to the current wheel clock. Does not touch `len`.
    fn place(&mut self, at: u64, seq: u64, value: T) {
        // XOR rule: the level is the highest 6-bit group where `at`
        // disagrees with the clock. `| SLOT_MASK` folds the `at == elapsed`
        // case into level 0.
        let masked = (at ^ self.elapsed) | SLOT_MASK;
        if masked >= WHEEL_SPAN {
            self.overflow.insert((at, seq), value);
            return;
        }
        let level = (63 - masked.leading_zeros()) as usize / SLOT_BITS as usize;
        let slot = ((at >> (SLOT_BITS * level as u32)) & SLOT_MASK) as usize;
        let state = self.level_mut(level);
        state.slot_mut(slot).push_back(Entry { at, seq, value });
        state.occupied |= 1 << slot;
    }

    /// The first occupied tier (wheel level, or `LEVELS` for the overflow)
    /// and the deadline of its first occupied slot/window. For level 0 the
    /// deadline is the exact entry time; for higher tiers it is the window
    /// start, i.e. the earliest the window can need cascading.
    fn next_ready(&self) -> Option<(usize, u64)> {
        for (level, state) in self.levels.iter().enumerate() {
            if state.occupied == 0 {
                continue;
            }
            let shift = SLOT_BITS * level as u32;
            let cursor = (self.elapsed >> shift) & SLOT_MASK;
            debug_assert_eq!(
                state.occupied & ((1u64 << cursor) - 1),
                0,
                "stale slot behind the cursor at level {level}"
            );
            let slot = u64::from(state.occupied.trailing_zeros());
            let window = self.elapsed & !((1u64 << (shift + SLOT_BITS)) - 1);
            return Some((level, window | (slot << shift)));
        }
        self.overflow
            .first_key_value()
            .map(|(&(at, _), _)| (LEVELS, at & !(WHEEL_SPAN - 1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn drain(wheel: &mut TimerWheel<u32>) -> Vec<(u64, u32)> {
        std::iter::from_fn(|| wheel.pop_until(SimTime::MAX))
            .map(|(at, v)| (at.as_micros(), v))
            .collect()
    }

    #[test]
    fn pops_in_time_order_with_insertion_stable_ties() {
        let mut w = TimerWheel::new();
        w.push(t(30), 0);
        w.push(t(10), 1);
        w.push(t(10), 2);
        w.push(t(20), 3);
        w.push(t(10), 4);
        assert_eq!(w.len(), 5);
        assert_eq!(
            drain(&mut w),
            vec![(10, 1), (10, 2), (10, 4), (20, 3), (30, 0)]
        );
        assert!(w.is_empty());
    }

    #[test]
    fn pop_until_gates_on_horizon_without_losing_events() {
        let mut w = TimerWheel::new();
        w.push(t(100), 7);
        assert_eq!(w.pop_until(t(99)), None);
        assert_eq!(w.len(), 1);
        assert_eq!(w.pop_until(t(100)), Some((t(100), 7)));
        assert_eq!(w.pop_until(t(u64::MAX)), None);
    }

    #[test]
    fn level_rollover_crossing_slot_windows() {
        // Deadlines straddling the level-0 window boundary at 64 and the
        // level-1 boundary at 4096 still pop in global order.
        let mut w = TimerWheel::new();
        for (i, at) in [63u64, 64, 65, 4095, 4096, 4097, 62].iter().enumerate() {
            w.push(t(*at), i as u32);
        }
        assert_eq!(
            drain(&mut w),
            vec![
                (62, 6),
                (63, 0),
                (64, 1),
                (65, 2),
                (4095, 3),
                (4096, 4),
                (4097, 5)
            ]
        );
    }

    #[test]
    fn same_tick_fifo_survives_a_cascade() {
        // `a` parks at level 1 awaiting cascade; after the wheel clock
        // advances into `a`'s level-0 window, `b` is pushed directly at the
        // same tick. The XOR rule guarantees the cascade already ran, so
        // `a` (earlier seq) still pops first.
        let mut w = TimerWheel::new();
        w.push(t(5000), 1); // level 1 from clock 0
        w.push(t(4992), 0); // same level-1 slot, opens the window
        assert_eq!(w.pop_until(t(4992)), Some((t(4992), 0)));
        w.push(t(5000), 2); // lands directly in level 0
        assert_eq!(drain(&mut w), vec![(5000, 1), (5000, 2)]);
    }

    #[test]
    fn far_future_overflow_promotion() {
        let mut w = TimerWheel::new();
        let span = 1u64 << 36;
        w.push(t(2 * span + 5), 3);
        w.push(t(span + 7), 1);
        w.push(t(span + 7), 2); // same-tick tie across the overflow tier
        w.push(t(42), 0);
        assert_eq!(w.len(), 4);
        // Nothing due yet besides the near event.
        assert_eq!(w.pop_until(t(1000)), Some((t(42), 0)));
        assert_eq!(w.pop_until(t(1000)), None);
        assert_eq!(
            drain(&mut w),
            vec![(span + 7, 1), (span + 7, 2), (2 * span + 5, 3)]
        );
    }

    #[test]
    fn deadlines_near_u64_max_do_not_overflow() {
        let mut w = TimerWheel::new();
        w.push(t(u64::MAX), 1);
        w.push(t(u64::MAX - 1), 0);
        w.push(t(5), 9);
        assert_eq!(
            drain(&mut w),
            vec![(5, 9), (u64::MAX - 1, 0), (u64::MAX, 1)]
        );
    }

    #[test]
    fn matches_sorted_reference_under_interleaved_churn() {
        // Deterministic LCG-driven churn: interleaved pushes (with heavy
        // same-tick ties) and horizon-bounded pops, checked against a
        // sorted-vector reference model keyed on (time, seq).
        let mut lcg: u64 = 0x243F_6A88_85A3_08D3;
        let mut step = move || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            lcg >> 33
        };
        let mut w: TimerWheel<u32> = TimerWheel::new();
        let mut model: Vec<(u64, u64, u32)> = Vec::new();
        let mut frontier = 0u64;
        let mut seq = 0u64;
        let mut popped = Vec::new();
        let mut expected = Vec::new();
        for round in 0..2000u32 {
            if step() % 3 != 0 {
                // Small offsets force ties and level-0 churn; occasional
                // big ones exercise upper levels and the overflow tier.
                let offset = match step() % 10 {
                    0 => step() % (1 << 37),
                    1 => step() % 100_000,
                    _ => step() % 16,
                };
                let at = frontier.saturating_add(offset);
                w.push(t(at), round);
                model.push((at, seq, round));
                seq += 1;
            } else {
                // Mirror the kernel contract: after a `pop_until(horizon)`
                // phase the clock is `horizon`, and every later push is at
                // or after it.
                let horizon = frontier.saturating_add(step() % 50_000);
                while let Some((at, v)) = w.pop_until(t(horizon)) {
                    popped.push((at.as_micros(), v));
                }
                frontier = horizon;
                model.sort_unstable();
                while let Some(&(at, _, v)) = model.first() {
                    if at > horizon {
                        break;
                    }
                    expected.push((at, v));
                    model.remove(0);
                }
                assert_eq!(popped, expected, "divergence at round {round}");
            }
        }
        assert_eq!(w.len(), model.len());
        popped.extend(drain(&mut w));
        model.sort_unstable();
        expected.extend(model.iter().map(|&(at, _, v)| (at, v)));
        assert_eq!(popped, expected);
    }
}
