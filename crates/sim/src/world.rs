//! The simulation kernel: event loop, MAC/medium arbitration, pacing,
//! delivery and node lifecycle.

use crate::config::{SenderMode, SimConfig, SpatialIndex};
use crate::events::{EventKind, EventQueue};
use crate::fault::{FaultPlan, FaultState};
use crate::radio::{Frame, FrameKind, Motion, Position, Transmission};
use crate::shard::{self, CachedVerdict, PhysArgs, PhysOutcome, PhysScratch};
use crate::slab::{
    DenseTable, NodeTable, SeqSlab, FLAG_BUCKET_SCHEDULED, FLAG_MAC_SCHEDULED, FLAG_TRANSMITTING,
};
use crate::spatial::{NodeGrid, TxEntry, TxGrid};
use crate::stats::{NodeStats, Stats};
use crate::transport::{MessageId, RetrPlan, Transport};
use crate::wheel::TimerWheel;
use bytes::Bytes;
use pds_core::SimRng;
use pds_core::{Application, Command, Context, MessageHandle, MessageMeta, NodeId, TimerId};
use pds_core::{SimDuration, SimTime};
use pds_det::DetMap;
use pds_obs::{Phase, TraceEvent, TraceKind, TraceSink};
use std::any::Any;
use std::collections::VecDeque;

/// Interval between transport garbage-collection sweeps.
const SWEEP_INTERVAL: SimDuration = SimDuration::from_secs(5);
/// How long delivered-message dedup state is retained.
const DELIVERED_HORIZON: SimDuration = SimDuration::from_secs(60);
/// How long incomplete reassembly state is retained after the last fragment.
const STALE_HORIZON: SimDuration = SimDuration::from_secs(30);
/// Upper bound of the random pre-transmission defer that desynchronizes
/// nodes deciding to transmit at the same instant (the DCF contention
/// window analogue; collisions happen when two defers land within the
/// sensing delay of each other).
const INITIAL_DEFER: SimDuration = SimDuration::from_micros(600);
/// Upper bound of the random jitter before an ack transmission.
const ACK_JITTER: SimDuration = SimDuration::from_millis(10);

/// Priority class of an outgoing frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SendClass {
    Data,
    Repair,
    Ack,
}

#[derive(Debug)]
enum TimerKind {
    App(u64),
    Retr(MessageId),
    AckSend(MessageId),
}

/// Cold per-node state, stored inline in the node slab. The hot
/// radio-phase bools (`transmitting`, `mac_scheduled`, `bucket_scheduled`)
/// live in the slab's parallel flags array ([`NodeTable`]) — the
/// struct-of-arrays split that keeps per-dispatch MAC checks on a compact
/// byte array instead of this struct.
struct NodeState {
    app: Box<dyn Application>,
    transport: Transport,
    // Leaky bucket (unused in RawUdp mode).
    bucket_queue: VecDeque<Frame>,
    bucket_tokens: f64,
    bucket_last: SimTime,
    // OS UDP send buffer + MAC.
    os_buffer: VecDeque<Frame>,
    os_used: usize,
    timers: DetMap<TimerId, TimerKind>,
    msg_seq: u64,
    rng: SimRng,
    stats: NodeStats,
}

impl NodeState {
    fn new(now: SimTime, rng: SimRng, bucket_capacity: f64) -> Self {
        Self {
            app: Box::new(NoopApp),
            transport: Transport::new(),
            bucket_queue: VecDeque::new(),
            bucket_tokens: bucket_capacity,
            bucket_last: now,
            os_buffer: VecDeque::new(),
            os_used: 0,
            timers: DetMap::default(),
            msg_seq: 0,
            rng,
            stats: NodeStats::default(),
        }
    }
}

/// Placeholder application swapped out immediately in `add_node`.
struct NoopApp;
impl Application for NoopApp {
    fn on_start(&mut self, _ctx: &mut Context) {}
    fn on_message(&mut self, _ctx: &mut Context, _meta: MessageMeta, _payload: Bytes) {}
}

type ControlFn = Box<dyn FnOnce(&mut World) + Send>;

/// A simulated wireless world: nodes, medium and virtual clock.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
pub struct World {
    config: SimConfig,
    now: SimTime,
    queue: EventQueue,
    /// Dense node slab indexed by [`NodeId`], with the hot radio-phase
    /// flags split into a parallel byte array (DESIGN.md §16). Iterates
    /// ascending by id, exactly like the `BTreeMap` it replaced.
    nodes: NodeTable<NodeState>,
    /// Motions of all alive nodes, keyed identically to `nodes`. Kept
    /// outside [`NodeState`] so shard workers can borrow positions as a
    /// `Sync` snapshot while the (non-`Sync`) application boxes stay
    /// behind. Dense and ascending, so brute-force receiver enumeration
    /// iterates in the same ascending-id order as the node table.
    motions: DenseTable<Motion>,
    /// Active (and recently finished) transmissions, keyed by monotone tx
    /// id in a base-offset slab sized to the live window. Iterates in
    /// ascending id order so interference sums fold identically in grid
    /// and brute-force modes — f64 addition order must not depend on the
    /// index choice.
    transmissions: SeqSlab<Transmission>,
    /// Spatial index over node positions (receiver/neighbor queries).
    node_grid: NodeGrid,
    /// Spatial index over transmission start positions (carrier sense).
    tx_grid: TxGrid,
    /// Live transmission ids per sender, indexed by raw node id, for O(1)
    /// half-duplex checks. Entries outlive their node (pruning still needs
    /// them) and empty lists cost nothing.
    tx_by_sender: Vec<Vec<u64>>,
    /// Transmission end times, for amortized-O(1) pruning instead of map
    /// sweeps. Same wheel primitive as the event queue (DESIGN.md §11);
    /// pop order equals the old `BinaryHeap<Reverse<(end, tx_id)>>` because
    /// tx ids are pushed in ascending order.
    tx_prune: TimerWheel<u64>,
    /// Reusable carrier-sense candidate buffer (avoids per-event allocs).
    cs_scratch: Vec<TxEntry>,
    /// Reusable candidate buffers for inline physical-verdict computes.
    phys_scratch: PhysScratch,
    /// Reusable verdict and delivery lists — hot-path allocations
    /// otherwise.
    vd_scratch: Vec<(NodeId, PhysOutcome)>,
    dl_scratch: Vec<NodeId>,
    /// Reusable leaky-bucket release buffer.
    rel_scratch: Vec<Frame>,
    /// Reusable neighbor-query result buffer ([`World::neighbors`]).
    nbr_scratch: Vec<NodeId>,
    /// Reusable neighbor-query candidate buffer (grid mode).
    nbr_cands: Vec<(NodeId, Motion)>,
    /// Reusable fragmentation buffer, recycled through
    /// [`Transport::send_message`] so large sends stop allocating a fresh
    /// `Vec<Frame>` per message.
    frame_scratch: Vec<Frame>,
    /// Reusable application command buffer, threaded through [`Context`].
    cmd_scratch: Vec<Command>,
    next_node: u32,
    next_tx: u64,
    next_timer: u64,
    next_ctrl: u64,
    /// Scheduled control closures, keyed by monotone id in a base-offset
    /// slab (they fire roughly in issue order, so the window stays small).
    controls: SeqSlab<ControlFn>,
    rng: SimRng,
    stats: Stats,
    max_airtime: SimDuration,
    /// Structured trace sink; `None` (the default) keeps every emission
    /// site a single branch. Sinks observe, never influence: installing
    /// one must not change replay digests, stats, or rng consumption.
    sink: Option<Box<dyn TraceSink>>,
    /// Installed fault plan (DST layer); `None` (the default) keeps the
    /// delivery path at a single branch. Fault decisions consume only the
    /// plan-owned rng, so faultless and no-op-plan runs are bit-identical.
    faults: Option<Box<FaultState>>,
    /// Kernel events dispatched so far. Always-on (one add per dispatch):
    /// the denominator of the bench resource accounting's events/sec and
    /// the natural progress unit for long adversarial runs. Deliberately
    /// not part of [`Stats`] — it counts kernel work, not protocol
    /// outcomes.
    events_dispatched: u64,
    /// Bumped on every node add/remove/move/teleport. Shard-round verdict
    /// caches are valid only while the epoch they were computed under
    /// still holds (DESIGN.md §15).
    motion_epoch: u64,
    /// Start time and position of every transmission begun since the last
    /// verdict-cache drain (maintained only when `shards > 1`). Cached
    /// verdicts record the log length at compute time; newer entries are
    /// checked for possible overlap at commit.
    tx_log: Vec<(SimTime, Position)>,
    /// Absolute count of entries ever drained from `tx_log`, so cache
    /// entries can hold absolute marks across log resets.
    tx_log_base: u64,
    /// Precomputed physical verdicts by transmission id (`shards > 1`
    /// only). Entries are consumed (or discarded, if stale) by their own
    /// `TxEnd` dispatch.
    shard_cache: DetMap<u64, CachedVerdict>,
    /// Dispatches since the last shard-round trigger check.
    events_since_round: u32,
    /// Shard rounds executed / verdicts committed from cache / cached
    /// verdicts discarded as stale. Diagnostics like `events_dispatched`:
    /// they count kernel work, not protocol outcomes, and the bench uses
    /// them to prove the parallel path is actually exercised.
    shard_rounds: u64,
    shard_hits: u64,
    shard_stale: u64,
    /// Running digest of the dispatched event stream (DESIGN.md §8).
    #[cfg(feature = "replay-digest")]
    digest: crate::digest::ReplayDigest,
}

/// How many dispatches between shard-round trigger checks. Purely a
/// pacing knob: triggering (or not) never changes results, only whether
/// `tx_end` finds its verdict precomputed.
const ROUND_STRIDE: u32 = 64;

impl World {
    /// Creates an empty world with the given configuration and random seed.
    /// Identical (config, seed, scenario) triples replay identically —
    /// including across [`SpatialIndex`] choices, which only select the
    /// query data structure, never the results.
    ///
    /// # Panics
    ///
    /// Panics if `radio.range_m × spatial.cell_factor` is not a positive
    /// finite cell size.
    #[must_use]
    pub fn new(mut config: SimConfig, seed: u64) -> Self {
        // shards == 0 makes no sense; treat it as the sequential path.
        config.shards = config.shards.max(1);
        let max_airtime = config.radio.frame_airtime(config.radio.max_frame_bytes);
        let cell_m = config.radio.range_m * config.spatial.cell_factor;
        // Carrier sense and (with a finite interference horizon) the
        // interference pre-scan query this grid with wider radii; sizing
        // its cells to the largest such radius keeps every probe at 3×3
        // cells.
        let tx_reach = if config.radio.interference_range_factor.is_finite() {
            config
                .radio
                .cs_range_factor
                .max(config.radio.interference_range_factor + 1.0)
        } else {
            config.radio.cs_range_factor
        };
        let tx_cell_m = cell_m * tx_reach.max(1.0);
        let mut queue = EventQueue::new(config.scheduler);
        queue.push(SimTime::ZERO + SWEEP_INTERVAL, EventKind::Sweep);
        Self {
            config,
            now: SimTime::ZERO,
            queue,
            nodes: NodeTable::default(),
            motions: DenseTable::default(),
            transmissions: SeqSlab::default(),
            node_grid: NodeGrid::new(cell_m, SimTime::ZERO),
            tx_grid: TxGrid::new(tx_cell_m),
            tx_by_sender: Vec::new(),
            tx_prune: TimerWheel::new(),
            cs_scratch: Vec::new(),
            phys_scratch: PhysScratch::default(),
            vd_scratch: Vec::new(),
            dl_scratch: Vec::new(),
            rel_scratch: Vec::new(),
            nbr_scratch: Vec::new(),
            nbr_cands: Vec::new(),
            frame_scratch: Vec::new(),
            cmd_scratch: Vec::new(),
            next_node: 0,
            next_tx: 0,
            next_timer: 0,
            next_ctrl: 0,
            controls: SeqSlab::default(),
            rng: SimRng::new(seed),
            stats: Stats::default(),
            max_airtime,
            sink: None,
            faults: None,
            events_dispatched: 0,
            motion_epoch: 0,
            tx_log: Vec::new(),
            tx_log_base: 0,
            shard_cache: DetMap::default(),
            events_since_round: 0,
            shard_rounds: 0,
            shard_hits: 0,
            shard_stale: 0,
            #[cfg(feature = "replay-digest")]
            digest: crate::digest::ReplayDigest::default(),
        }
    }

    /// FNV-1a digest of every event dispatched so far: virtual timestamp,
    /// event kind, and identifying payload, folded in dispatch order. Two
    /// runs replayed bit-identically iff their digests are equal (the
    /// converse holds up to hash collisions). See DESIGN.md §8.
    #[cfg(feature = "replay-digest")]
    #[must_use]
    pub fn replay_digest(&self) -> u64 {
        self.digest.value()
    }

    /// Installs a structured trace sink. Every kernel, radio, transport
    /// and application trace event from now on is recorded into it. The
    /// sink only observes — replay digests and statistics are identical
    /// with or without one — but emission itself costs time, so leave
    /// tracing off for performance measurements.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    /// Removes and returns the installed trace sink, flushed. Downcast via
    /// [`TraceSink::as_any`] to recover the concrete sink (e.g. a
    /// [`pds_obs::RingSink`] to read events back).
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        let mut sink = self.sink.take();
        if let Some(s) = sink.as_mut() {
            s.flush();
        }
        sink
    }

    /// Whether a trace sink is currently installed.
    #[must_use]
    pub fn trace_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Installs a deterministic fault plan (DST layer). Wire-level faults
    /// — extra drops, duplicates, delays, partitions, silences — apply
    /// from now on; probabilistic decisions consume the plan's own rng
    /// stream, never the kernel's, so a [`FaultPlan::none`] plan leaves
    /// replay digests and statistics bit-identical to no plan at all.
    /// Churn storms carried by the plan are scenario data for harnesses;
    /// the kernel does not act on them.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        self.faults = Some(Box::new(FaultState::new(plan)));
    }

    /// Removes the installed fault plan, returning it. Receptions already
    /// diverted to a delayed delivery are dropped with it.
    pub fn take_faults(&mut self) -> Option<FaultPlan> {
        self.faults.take().map(|f| f.plan)
    }

    /// Whether a fault plan is currently installed.
    #[must_use]
    pub fn faults_enabled(&self) -> bool {
        self.faults.is_some()
    }

    /// Highest retransmission attempt any tracked message has reached on
    /// any currently alive node — DST evidence for the bounded-retry
    /// invariant (`attempt ≤ max_retr + frag_count/8` by construction).
    #[must_use]
    pub fn max_retr_attempt(&self) -> u32 {
        self.nodes
            .values()
            .map(|n| n.transport.max_attempt())
            .max()
            .unwrap_or(0)
    }

    /// Records `kind` into the sink, if one is installed.
    #[inline]
    fn emit(&mut self, node: u32, phase: Phase, kind: TraceKind) {
        if let Some(s) = self.sink.as_mut() {
            s.record(&TraceEvent {
                at_us: self.now.as_micros(),
                node,
                phase,
                kind,
            });
        }
    }

    /// The shared configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Global traffic counters so far.
    #[must_use]
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Total kernel events dispatched since construction.
    #[must_use]
    pub fn events_dispatched(&self) -> u64 {
        self.events_dispatched
    }

    /// Shard executor diagnostics: `(rounds, hits, stale)` — precompute
    /// rounds run, verdicts committed straight from the cache, and cached
    /// verdicts discarded because the world changed under them. All zero
    /// when `shards == 1`. Purely observational; see DESIGN.md §15.
    #[must_use]
    pub fn shard_counters(&self) -> (u64, u64, u64) {
        (self.shard_rounds, self.shard_hits, self.shard_stale)
    }

    /// Traffic counters for one node, if alive.
    #[must_use]
    pub fn node_stats(&self, id: NodeId) -> Option<NodeStats> {
        self.nodes.get(&id).map(|n| n.stats)
    }

    /// Total energy all alive nodes have spent so far under `model`, in
    /// joules (radio bytes moved plus idle listening since time zero).
    #[must_use]
    pub fn energy_j(&self, model: &crate::stats::EnergyModel) -> f64 {
        let elapsed = self.now.as_secs_f64();
        self.nodes
            .values()
            .map(|n| model.node_energy_j(&n.stats, elapsed))
            .sum()
    }

    /// Diagnostic queue depths for one node: bytes waiting in the leaky
    /// bucket and in the OS send buffer.
    #[must_use]
    pub fn queue_depths(&self, id: NodeId) -> Option<(usize, usize)> {
        self.nodes
            .get(&id)
            .map(|n| (n.bucket_queue.iter().map(|f| f.wire_bytes).sum(), n.os_used))
    }

    /// Pre-sizes the node slabs for `n` nodes. Purely an allocation hint:
    /// city-scale scenario builders call this before their `add_node`
    /// storm so the slabs do not pay repeated doubling copies (and their
    /// transient peak-heap spikes). Never changes behavior.
    pub fn reserve_nodes(&mut self, n: usize) {
        self.nodes.reserve(n);
        self.motions.reserve(n);
    }

    /// Adds a node at `pos` running `app`; `on_start` fires at the current
    /// time. Returns the new node's id.
    pub fn add_node(&mut self, pos: Position, app: Box<dyn Application>) -> NodeId {
        let id = NodeId(self.next_node);
        self.next_node += 1;
        let rng = self.rng.fork(u64::from(id.0) | 1 << 32);
        let capacity = match self.config.sender {
            SenderMode::RawUdp => 0.0,
            SenderMode::LeakyBucket { capacity_bytes, .. } => capacity_bytes as f64,
        };
        let mut state = NodeState::new(self.now, rng, capacity);
        state.app = app;
        let motion = Motion::stationary(pos, self.now);
        self.node_grid.upsert(id, &motion, self.now);
        self.motions.insert(id, motion);
        self.motion_epoch += 1;
        self.nodes.insert(id, state);
        self.queue.push(self.now, EventKind::Start(id));
        id
    }

    /// Removes a node immediately (a user leaving the area). Its queued
    /// frames and timers are discarded; a frame already on the air still
    /// reaches receivers.
    pub fn remove_node(&mut self, id: NodeId) {
        self.nodes.remove(&id);
        self.motions.remove(&id);
        self.motion_epoch += 1;
        self.node_grid.remove(id);
    }

    /// Whether the node is currently in the world.
    #[must_use]
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.nodes.contains_key(&id)
    }

    /// Ids of all alive nodes, ascending. Returns an iterator rather than
    /// a collected `Vec`: at city scale this is called on hot paths and a
    /// per-call allocation of 10k–100k ids would dominate. Collect at the
    /// call site when a snapshot is genuinely needed (e.g. to mutate the
    /// world while walking it).
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.keys()
    }

    /// Number of alive nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Starts `id` walking toward `dest` at `speed_mps` (pedestrian speeds
    /// are ~1–1.5 m/s); it stops on arrival.
    pub fn move_node(&mut self, id: NodeId, dest: Position, speed_mps: f64) {
        let now = self.now;
        let Some(cur) = self.motions.get_mut(&id) else {
            return;
        };
        let from = cur.position(now);
        let motion = Motion {
            from,
            to: dest,
            depart: now,
            speed_mps,
        };
        *cur = motion;
        self.motion_epoch += 1;
        self.node_grid.upsert(id, &motion, now);
    }

    /// Teleports `id` to `pos` (scenario setup only).
    pub fn set_position(&mut self, id: NodeId, pos: Position) {
        let now = self.now;
        let Some(cur) = self.motions.get_mut(&id) else {
            return;
        };
        let motion = Motion::stationary(pos, now);
        *cur = motion;
        self.motion_epoch += 1;
        self.node_grid.upsert(id, &motion, now);
    }

    /// Current position of `id`, if alive.
    #[must_use]
    pub fn position(&self, id: NodeId) -> Option<Position> {
        self.motions.get(&id).map(|m| m.position(self.now))
    }

    /// Alive nodes currently within radio range of `id` (excluding itself),
    /// ascending by id.
    ///
    /// Returns a borrow of an internal scratch buffer that is overwritten
    /// by the next `neighbors` call — copy it out (`.to_vec()`) if you need
    /// the result to survive. The scratch reuse kills the per-call
    /// allocation this query used to pay, which matters at city scale
    /// where protocol layers poll neighborhoods every dispatch.
    pub fn neighbors(&mut self, id: NodeId) -> &[NodeId] {
        self.nbr_scratch.clear();
        let Some(pos) = self.position(id) else {
            return &self.nbr_scratch;
        };
        let range = self.config.radio.range_m;
        match self.config.spatial.index {
            SpatialIndex::BruteForce => {
                for (other, m) in self.motions.iter() {
                    if other != id && m.position(self.now).distance(&pos) <= range {
                        self.nbr_scratch.push(other);
                    }
                }
            }
            SpatialIndex::Grid => {
                self.nbr_cands.clear();
                self.node_grid
                    .query_into(pos, range, self.now, &mut self.nbr_cands);
                self.nbr_cands.sort_unstable_by_key(|&(r, _)| r);
                self.nbr_cands.dedup_by_key(|&mut (r, _)| r);
                for &(r, m) in &self.nbr_cands {
                    if r != id && m.position(self.now).distance(&pos) <= range {
                        self.nbr_scratch.push(r);
                    }
                }
            }
        }
        &self.nbr_scratch
    }

    /// Schedules `f` to run at time `at` with full mutable access to the
    /// world — the hook scenario scripts use to start consumers, apply
    /// mobility traces, or inject churn. The closure must be `Send`, like
    /// everything a `World` owns, so whole worlds can move to sweep worker
    /// threads (see `pds-bench`).
    pub fn schedule(&mut self, at: SimTime, f: impl FnOnce(&mut World) + Send + 'static) {
        let id = self.next_ctrl;
        self.next_ctrl += 1;
        self.controls.insert(id, Box::new(f));
        self.queue.push(at.max(self.now), EventKind::Control(id));
    }

    /// Immutable access to a node's application, downcast to its concrete
    /// type (for extracting results after a run).
    #[must_use]
    pub fn app<T: Application>(&self, id: NodeId) -> Option<&T> {
        let state = self.nodes.get(&id)?;
        (state.app.as_ref() as &dyn Any).downcast_ref::<T>()
    }

    /// Mutable access to a node's application.
    pub fn app_mut<T: Application>(&mut self, id: NodeId) -> Option<&mut T> {
        let state = self.nodes.get_mut(&id)?;
        (state.app.as_mut() as &mut dyn Any).downcast_mut::<T>()
    }

    /// Invokes `f` on node `id`'s application with a live [`Context`], so
    /// external drivers (scenario scripts, scheduled closures) can trigger
    /// protocol actions that send messages or arm timers. Returns `None` if
    /// the node is gone or its application is not a `T`.
    pub fn with_app<T: Application, R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut T, &mut Context) -> R,
    ) -> Option<R> {
        let now = self.now;
        let next_timer = self.next_timer;
        let trace_on = self.sink.is_some();
        let mut buf = std::mem::take(&mut self.cmd_scratch);
        buf.clear();
        let state = self.nodes.get_mut(&id)?;
        let msg_seq = state.msg_seq;
        let NodeState { app, rng, .. } = state;
        let app = (app.as_mut() as &mut dyn Any).downcast_mut::<T>()?;
        let mut ctx = Context::new(now, id, next_timer, msg_seq, rng, buf, trace_on);
        let out = f(app, &mut ctx);
        let (mut commands, next_timer, next_msg) = ctx.finish();
        self.next_timer = next_timer;
        if next_msg != msg_seq {
            if let Some(state) = self.nodes.get_mut(&id) {
                state.msg_seq = next_msg;
            }
        }
        self.apply_commands(id, &mut commands);
        self.cmd_scratch = commands;
        Some(out)
    }

    /// An independent random stream for scenario-level decisions.
    pub fn fork_rng(&mut self, stream: u64) -> SimRng {
        self.rng.fork(stream | 1 << 40)
    }

    /// Runs the event loop until virtual time `horizon` (inclusive); the
    /// clock ends at `horizon` even if the queue drains earlier.
    pub fn run_until(&mut self, horizon: SimTime) {
        while let Some((at, kind)) = self.pop_event(horizon) {
            self.now = at.max(self.now);
            self.refresh_node_grid();
            if self.config.shards > 1 {
                self.maybe_shard_round();
            }
            self.dispatch(kind);
        }
        self.now = self.now.max(horizon);
        // Leave exact buckets behind so post-run queries (scenario code
        // inspecting neighborhoods) need no staleness padding.
        self.refresh_node_grid();
    }

    /// Pops the next due event off the scheduler. Factored out of
    /// [`run_until`] so the profiler can charge wheel time separately
    /// from dispatch time.
    fn pop_event(&mut self, horizon: SimTime) -> Option<(SimTime, EventKind)> {
        #[cfg(feature = "prof")]
        let _t = crate::prof::ScopeTimer::start(crate::prof::SCOPE_WHEEL);
        self.queue.pop_until(horizon)
    }

    /// Re-buckets moving nodes once the grid is older than the configured
    /// re-bucket interval. Until then, queries stay exact by padding their
    /// radius with the maximum possible drift.
    fn refresh_node_grid(&mut self) {
        if self.config.spatial.index != SpatialIndex::Grid {
            // Brute-force mode never queries the grid; skipping the sweep
            // keeps the differential benchmark an honest comparison.
            return;
        }
        let now = self.now;
        let stamp = self.node_grid.stamp();
        if now <= stamp || now.since(stamp) < self.config.spatial.rebucket_interval {
            return;
        }
        let Self {
            node_grid, motions, ..
        } = self;
        #[cfg(feature = "prof")]
        let _t = crate::prof::ScopeTimer::start(crate::prof::SCOPE_GRID);
        node_grid.rebucket(now, |id| motions.get(&id).copied());
    }

    // ---- shard rounds: precompute physical verdicts (DESIGN.md §15) ------

    /// Every [`ROUND_STRIDE`] dispatches, looks for transmissions ending
    /// inside the lookahead window without a cached verdict; if there is
    /// at least one per shard, runs a concurrent precompute round. Purely
    /// a scheduling decision — results are identical whether or not a
    /// round runs, because `tx_end` validates every cached verdict against
    /// the current state fingerprint before using it.
    fn maybe_shard_round(&mut self) {
        self.events_since_round += 1;
        if self.events_since_round < ROUND_STRIDE {
            return;
        }
        self.events_since_round = 0;
        if self.shard_cache.is_empty() {
            // Every cached verdict is consumed or discarded by its own
            // `TxEnd`, all of which lie inside the previous window — so an
            // empty cache means no entry can reference the start log, and
            // it can drain.
            self.tx_log_base += self.tx_log.len() as u64;
            self.tx_log.clear();
        }
        let now = self.now;
        let window_end = now + shard::lookahead(&self.config.radio);
        let pending = self
            .transmissions
            .values()
            .filter(|t| t.end > now && t.end <= window_end && !self.shard_cache.contains_key(&t.id))
            .count();
        if pending < self.config.shards as usize {
            return;
        }
        self.shard_rounds += 1;
        self.run_shard_round(window_end);
    }

    /// Partitions the pending window transmissions into column stripes
    /// and computes their physical verdicts on scoped worker threads.
    /// Workers only read a frozen `Sync` snapshot; all results enter the
    /// cache on this thread, tagged with the state fingerprint they were
    /// computed under.
    fn run_shard_round(&mut self, window_end: SimTime) {
        let shards = self.config.shards;
        let cell_m = self.config.radio.range_m * self.config.spatial.cell_factor;
        let epoch = self.motion_epoch;
        let log_mark = self.tx_log_base + self.tx_log.len() as u64;
        let pad_m = self.node_grid.max_speed() * shard::lookahead(&self.config.radio).as_secs_f64();
        let now = self.now;
        let mut work: Vec<Vec<u64>> = vec![Vec::new(); shards as usize];
        for t in self.transmissions.values() {
            if t.end > now && t.end <= window_end && !self.shard_cache.contains_key(&t.id) {
                let s = shard::shard_of(t.start_pos, cell_m, shards) as usize;
                if let Some(bucket) = work.get_mut(s) {
                    bucket.push(t.id);
                }
            }
        }
        let Self {
            config,
            motions,
            transmissions,
            tx_by_sender,
            node_grid,
            tx_grid,
            shard_cache,
            ..
        } = self;
        let args = PhysArgs {
            config,
            motions,
            transmissions,
            tx_by_sender: tx_by_sender.as_slice(),
            node_grid,
            tx_grid,
        };
        for batch in shard::compute_sharded(&args, &work) {
            for (id, verdicts) in batch {
                shard_cache.insert(
                    id,
                    CachedVerdict {
                        epoch,
                        log_mark,
                        pad_m,
                        verdicts,
                    },
                );
            }
        }
    }

    /// Whether a precomputed verdict still describes current world state:
    /// the motion epoch is unchanged (no node add/remove/move/teleport
    /// since the round) and no transmission started since the round that
    /// could overlap `tx` at any of its receivers — i.e. started before
    /// `tx.end` and within the interference-plus-range horizon of the
    /// sender, padded by the walker drift bound for the half-duplex case.
    fn verdict_still_valid(&self, entry: &CachedVerdict, tx: &Transmission) -> bool {
        if entry.epoch != self.motion_epoch {
            return false;
        }
        let Some(from) = entry.log_mark.checked_sub(self.tx_log_base) else {
            return false; // log drained past the mark; be conservative
        };
        let Ok(from) = usize::try_from(from) else {
            return false;
        };
        let Some(newer) = self.tx_log.get(from..) else {
            return false;
        };
        if newer.is_empty() {
            return true;
        }
        let range = self.config.radio.range_m;
        let trunc = range * self.config.radio.interference_range_factor;
        if !trunc.is_finite() {
            // Unbounded interference horizon: any new overlapping
            // transmission anywhere can change the verdict.
            return !newer.iter().any(|&(start, _)| start < tx.end);
        }
        // `trunc + range` covers interference at any in-range receiver
        // (triangle inequality); `range + pad` covers a receiver whose own
        // new transmission creates a half-duplex conflict, allowing for
        // its drift between the new start and `tx.end`.
        let bound = (trunc + range).max(range + entry.pad_m);
        !newer
            .iter()
            .any(|&(start, pos)| start < tx.end && pos.distance(&tx.start_pos) <= bound)
    }

    /// Runs for `span` beyond the current time.
    pub fn run_for(&mut self, span: SimDuration) {
        let horizon = self.now + span;
        self.run_until(horizon);
    }

    fn dispatch(&mut self, kind: EventKind) {
        self.events_dispatched += 1;
        #[cfg(feature = "replay-digest")]
        self.digest.record(self.now, &kind);
        if self.sink.is_some() {
            self.trace_kernel(&kind);
        }
        #[cfg(feature = "prof")]
        let _timer = crate::prof::DispatchTimer::start(crate::prof::slot_of(&kind));
        self.dispatch_inner(kind);
    }

    /// Mirrors the dispatched event stream — exactly what the replay
    /// digest folds — into the trace, so `pds-obs diff` of two traces
    /// explains any digest mismatch down to the first diverging event.
    fn trace_kernel(&mut self, kind: &EventKind) {
        let (node, tk) = match *kind {
            EventKind::Start(id) => (id.0, TraceKind::NodeStart),
            EventKind::MacTry { node, deferred } => (node.0, TraceKind::MacTry { deferred }),
            EventKind::TxEnd(tx) => (
                self.transmissions.get(&tx).map_or(u32::MAX, |t| t.sender.0),
                TraceKind::TxEnd { tx },
            ),
            EventKind::BucketDrain(node) => (node.0, TraceKind::BucketDrain),
            EventKind::Timer { node, id } => (node.0, TraceKind::TimerFired { timer: id.0 }),
            EventKind::Control(ctrl) => (u32::MAX, TraceKind::Control { ctrl }),
            EventKind::Sweep => (u32::MAX, TraceKind::Sweep),
            EventKind::FaultDeliver(fault) => (
                self.faults
                    .as_ref()
                    .and_then(|f| f.pending.get(&fault))
                    .map_or(u32::MAX, |p| p.receiver.0),
                TraceKind::FaultDeliver { fault },
            ),
        };
        self.emit(node, Phase::Kernel, tk);
    }

    fn dispatch_inner(&mut self, kind: EventKind) {
        match kind {
            EventKind::Start(id) => self.call_app(id, |app, ctx| app.on_start(ctx)),
            EventKind::MacTry { node, deferred } => self.mac_try(node, deferred),
            EventKind::TxEnd(tx) => self.tx_end(tx),
            EventKind::BucketDrain(node) => {
                self.nodes.set_flag(&node, FLAG_BUCKET_SCHEDULED, false);
                self.drain_bucket(node);
            }
            EventKind::Timer { node, id } => self.fire_timer(node, id),
            EventKind::Control(id) => {
                if let Some(f) = self.controls.remove(&id) {
                    f(self);
                }
            }
            EventKind::Sweep => {
                let now = self.now;
                for state in self.nodes.values_mut() {
                    state.transport.sweep(now, DELIVERED_HORIZON, STALE_HORIZON);
                }
                self.queue.push(now + SWEEP_INTERVAL, EventKind::Sweep);
            }
            EventKind::FaultDeliver(id) => self.fault_deliver(id),
        }
    }

    // ---- application callbacks -------------------------------------------

    fn call_app(&mut self, id: NodeId, f: impl FnOnce(&mut dyn Application, &mut Context)) {
        #[cfg(feature = "prof")]
        let _t = crate::prof::ScopeTimer::start(crate::prof::SCOPE_ENGINE);
        let now = self.now;
        let next_timer = self.next_timer;
        let trace_on = self.sink.is_some();
        let mut buf = std::mem::take(&mut self.cmd_scratch);
        buf.clear();
        let Some(state) = self.nodes.get_mut(&id) else {
            self.cmd_scratch = buf;
            return;
        };
        let msg_seq = state.msg_seq;
        let NodeState { app, rng, .. } = state;
        let mut ctx = Context::new(now, id, next_timer, msg_seq, rng, buf, trace_on);
        f(app.as_mut(), &mut ctx);
        let (mut commands, next_timer, next_msg) = ctx.finish();
        self.next_timer = next_timer;
        if next_msg != msg_seq {
            if let Some(state) = self.nodes.get_mut(&id) {
                state.msg_seq = next_msg;
            }
        }
        self.apply_commands(id, &mut commands);
        self.cmd_scratch = commands;
    }

    fn apply_commands(&mut self, id: NodeId, commands: &mut Vec<Command>) {
        for cmd in commands.drain(..) {
            match cmd {
                Command::Broadcast {
                    payload,
                    intended,
                    handle,
                    class,
                } => self.start_send(id, handle, payload, intended, class),
                Command::SetTimer { id: tid, at, tag } => {
                    if let Some(state) = self.nodes.get_mut(&id) {
                        state.timers.insert(tid, TimerKind::App(tag));
                        self.queue.push(at, EventKind::Timer { node: id, id: tid });
                    }
                }
                Command::CancelTimer(tid) => {
                    if let Some(state) = self.nodes.get_mut(&id) {
                        state.timers.remove(&tid);
                    }
                }
                Command::Trace(ev) => {
                    if let Some(s) = self.sink.as_mut() {
                        s.record(&ev);
                    }
                }
            }
        }
    }

    fn start_send(
        &mut self,
        id: NodeId,
        handle: MessageHandle,
        payload: Bytes,
        intended: Vec<NodeId>,
        class: u8,
    ) {
        let mut plan = {
            let Self {
                config,
                nodes,
                stats,
                frame_scratch,
                ..
            } = self;
            let Some(state) = nodes.get_mut(&id) else {
                return;
            };
            stats.messages_sent += 1;
            state.transport.send_message(
                id,
                handle.0,
                handle,
                payload,
                intended,
                class,
                config,
                std::mem::take(frame_scratch),
            )
        };
        if self.sink.is_some() {
            let bytes: u64 = plan.frames.iter().map(|f| f.wire_bytes as u64).sum();
            self.emit(
                id.0,
                Phase::Transport,
                TraceKind::MessageSent {
                    seq: handle.0,
                    bytes,
                    class: u64::from(class),
                },
            );
        }
        for frame in plan.frames.drain(..) {
            self.pace_frame(id, frame, SendClass::Data);
        }
        self.frame_scratch = plan.frames;
    }

    // ---- pacing: leaky bucket and OS buffer ------------------------------

    fn pace_frame(&mut self, id: NodeId, frame: Frame, class: SendClass) {
        match self.config.sender {
            SenderMode::RawUdp => self.enqueue_os(id, frame, class == SendClass::Ack),
            SenderMode::LeakyBucket { .. } => match class {
                // Acks bypass the bucket: tiny and latency-critical.
                SendClass::Ack => self.enqueue_os(id, frame, true),
                // Retransmitted fragments jump the (possibly megabytes
                // deep) data queue: a chunk missing one fragment must not
                // wait for the whole backlog to drain before it can repair.
                SendClass::Repair => {
                    if let Some(state) = self.nodes.get_mut(&id) {
                        state.bucket_queue.push_front(frame);
                    }
                    self.drain_bucket(id);
                }
                SendClass::Data => {
                    if let Some(state) = self.nodes.get_mut(&id) {
                        state.bucket_queue.push_back(frame);
                    }
                    self.drain_bucket(id);
                }
            },
        }
    }

    fn drain_bucket(&mut self, id: NodeId) {
        let SenderMode::LeakyBucket {
            capacity_bytes,
            rate_bps,
        } = self.config.sender
        else {
            return;
        };
        let os_cap = if self.config.radio.os_backpressure {
            self.config.radio.os_buffer_bytes
        } else {
            usize::MAX // prototype regime: inject regardless; enqueue_os drops
        };
        let now = self.now;
        let rate_bytes = rate_bps / 8.0;
        let mut release = std::mem::take(&mut self.rel_scratch);
        release.clear();
        let mut schedule_in: Option<SimDuration> = None;
        {
            let Some((state, flags)) = self.nodes.parts_mut(&id) else {
                return;
            };
            let dt = now.since(state.bucket_last).as_secs_f64();
            state.bucket_tokens =
                (state.bucket_tokens + dt * rate_bytes).min(capacity_bytes as f64);
            state.bucket_last = now;
            let mut os_projected = state.os_used;
            while let Some(front) = state.bucket_queue.front() {
                let wire = front.wire_bytes;
                let need = wire as f64;
                // Backpressure: a paced sender observes a full OS buffer
                // (blocking send / occupancy check) and waits for the MAC to
                // drain instead of dropping; `mac_try` re-drains the bucket
                // after each dequeue.
                if os_projected + wire > os_cap {
                    break;
                }
                if state.bucket_tokens + 1e-9 >= need {
                    state.bucket_tokens -= need;
                    os_projected += wire;
                    if let Some(frame) = state.bucket_queue.pop_front() {
                        release.push(frame);
                    }
                } else {
                    if *flags & FLAG_BUCKET_SCHEDULED == 0 {
                        let wait = (need - state.bucket_tokens) / rate_bytes;
                        *flags |= FLAG_BUCKET_SCHEDULED;
                        schedule_in = Some(SimDuration::from_secs_f64(wait.max(1e-6)));
                    }
                    break;
                }
            }
        }
        for frame in release.drain(..) {
            self.enqueue_os(id, frame, false);
        }
        self.rel_scratch = release;
        if let Some(delay) = schedule_in {
            self.queue.push(now + delay, EventKind::BucketDrain(id));
        }
    }

    fn enqueue_os(&mut self, id: NodeId, frame: Frame, priority: bool) {
        let cap = self.config.radio.os_buffer_bytes;
        let now = self.now;
        let mut dropped_msg = None;
        let mut dropped_bytes = None;
        let mut queued_depth = None;
        let mut schedule_mac = false;
        {
            let Some((state, flags)) = self.nodes.parts_mut(&id) else {
                return;
            };
            if state.os_used + frame.wire_bytes > cap {
                // The OS silently discards the datagram (§V-2).
                self.stats.frames_dropped_os += 1;
                dropped_bytes = Some(frame.wire_bytes as u64);
                if let FrameKind::Data { msg, .. } = frame.kind {
                    dropped_msg = Some(msg);
                }
            } else {
                state.os_used += frame.wire_bytes;
                queued_depth = Some(state.os_used as u64);
                if priority {
                    state.os_buffer.push_front(frame);
                } else {
                    state.os_buffer.push_back(frame);
                }
                if *flags & (FLAG_TRANSMITTING | FLAG_MAC_SCHEDULED) == 0 {
                    *flags |= FLAG_MAC_SCHEDULED;
                    schedule_mac = true;
                }
            }
        }
        if self.sink.is_some() {
            if let Some(bytes) = dropped_bytes {
                self.emit(id.0, Phase::Radio, TraceKind::FrameDroppedOs { bytes });
            }
            if let Some(bytes) = queued_depth {
                self.emit(id.0, Phase::Radio, TraceKind::QueueDepth { bytes });
            }
        }
        if schedule_mac {
            self.queue.push(
                now,
                EventKind::MacTry {
                    node: id,
                    deferred: false,
                },
            );
        }
        if let Some(msg) = dropped_msg {
            self.frame_done(id, msg);
        }
    }

    // ---- MAC: carrier sense, defer, transmit -----------------------------

    fn mac_try(&mut self, id: NodeId, deferred: bool) {
        let now = self.now;
        let cs_range = self.config.radio.range_m * self.config.radio.cs_range_factor;
        let sense_delay = self.config.radio.sense_delay;
        let backoff_max = self.config.radio.backoff_max.as_micros();
        let Some((state, flags)) = self.nodes.parts_mut(&id) else {
            return;
        };
        if *flags & FLAG_TRANSMITTING != 0 || state.os_buffer.is_empty() {
            *flags &= !FLAG_MAC_SCHEDULED;
            return;
        }
        let Some(pos) = self.motions.get(&id).map(|m| m.position(now)) else {
            return;
        };
        // Carrier sense: any ongoing transmission within the (extended)
        // sense range that has been on the air long enough to detect.
        // `max` is order-independent, so the grid path (candidates from
        // the cells overlapping the sense disk, then the same exact
        // filters) returns exactly what the exhaustive scan does.
        let sensed = |t: &Transmission| {
            t.end > now
                && t.sender != id
                && t.start + sense_delay <= now
                && t.start_pos.distance(&pos) <= cs_range
        };
        let busy_until = match self.config.spatial.index {
            SpatialIndex::BruteForce => self
                .transmissions
                .values()
                .filter(|t| sensed(t))
                .map(|t| t.end)
                .max(),
            SpatialIndex::Grid => {
                // The grid carries the sense-relevant fields inline, so the
                // scan never touches the transmission map. `max` is
                // order-independent, so the unspecified query order is fine.
                let mut cands = std::mem::take(&mut self.cs_scratch);
                cands.clear();
                self.tx_grid.query_into(pos, cs_range, &mut cands);
                let busy = cands
                    .iter()
                    .filter(|t| {
                        t.end > now
                            && t.sender != id
                            && t.start + sense_delay <= now
                            && t.pos.distance(&pos) <= cs_range
                    })
                    .map(|t| t.end)
                    .max();
                self.cs_scratch = cands;
                busy
            }
        };
        if let Some(until) = busy_until {
            let backoff = if backoff_max > 0 {
                self.rng.range_u64(0, backoff_max)
            } else {
                0
            };
            self.queue.push(
                until + SimDuration::from_micros(backoff),
                EventKind::MacTry {
                    node: id,
                    deferred: false,
                },
            );
            return;
        }
        if !deferred {
            let defer = self.rng.range_u64(0, INITIAL_DEFER.as_micros().max(1));
            self.queue.push(
                now + SimDuration::from_micros(defer),
                EventKind::MacTry {
                    node: id,
                    deferred: true,
                },
            );
            return;
        }
        // Transmit.
        let Some((state, flags)) = self.nodes.parts_mut(&id) else {
            return;
        };
        let Some(frame) = state.os_buffer.pop_front() else {
            *flags &= !FLAG_MAC_SCHEDULED;
            return;
        };
        state.os_used = state.os_used.saturating_sub(frame.wire_bytes);
        // The OS buffer drained: wake a backpressured leaky bucket.
        let wake_bucket = !state.bucket_queue.is_empty() && *flags & FLAG_BUCKET_SCHEDULED == 0;
        if wake_bucket {
            *flags |= FLAG_BUCKET_SCHEDULED;
            self.queue.push(now, EventKind::BucketDrain(id));
        }
        *flags = (*flags | FLAG_TRANSMITTING) & !FLAG_MAC_SCHEDULED;
        state.stats.frames_sent += 1;
        state.stats.bytes_sent += frame.wire_bytes as u64;
        self.stats.frames_sent += 1;
        self.stats.bytes_sent += frame.wire_bytes as u64;
        let wire = frame.wire_bytes as u64;
        let frame_class = frame.class;
        match frame.kind {
            FrameKind::Data { .. } => {
                // The single site where on-air data bytes are counted;
                // splitting here keeps total() == data_bytes_sent exact.
                self.stats.data_bytes_sent += wire;
                self.stats.data_bytes_by_phase.add(frame_class, wire);
            }
            FrameKind::Ack { .. } => self.stats.ack_bytes_sent += wire,
        }
        let duration = self.config.radio.frame_airtime(frame.wire_bytes);
        // Message identity of the carried payload, captured before the
        // frame moves into the transmission table: `origin#seq` is the
        // correlation key tying this frame to its transport message and —
        // through the protocol layer's `QuerySent`/`ResponseSent` events —
        // to the consumer session it serves.
        let (msg_origin, msg_seq) = match &frame.kind {
            FrameKind::Data { msg, .. } | FrameKind::Ack { msg, .. } => {
                (u64::from(msg.origin.0), msg.seq)
            }
        };
        let tx_id = self.next_tx;
        self.next_tx += 1;
        self.transmissions.insert(
            tx_id,
            Transmission {
                id: tx_id,
                sender: id,
                start_pos: pos,
                start: now,
                end: now + duration,
                frame,
            },
        );
        self.tx_grid.insert(TxEntry {
            id: tx_id,
            sender: id,
            pos,
            start: now,
            end: now + duration,
        });
        let sender_ix = id.0 as usize;
        if sender_ix >= self.tx_by_sender.len() {
            self.tx_by_sender.resize_with(sender_ix + 1, Vec::new);
        }
        if let Some(ids) = self.tx_by_sender.get_mut(sender_ix) {
            ids.push(tx_id);
        }
        self.tx_prune.push(now + duration, tx_id);
        self.queue.push(now + duration, EventKind::TxEnd(tx_id));
        if self.config.shards > 1 {
            // Shard-cache invalidation input: verdicts computed before
            // this start must re-check overlap against it at commit.
            self.tx_log.push((now, pos));
        }
        if self.sink.is_some() {
            self.emit(
                id.0,
                Phase::Radio,
                TraceKind::TxStart {
                    tx: tx_id,
                    origin: msg_origin,
                    seq: msg_seq,
                    bytes: wire,
                    class: u64::from(frame_class),
                },
            );
        }
    }

    // ---- transmission end: delivery --------------------------------------

    fn tx_end(&mut self, tx_id: u64) {
        let now = self.now;
        let baseline_loss = self.config.radio.baseline_loss;
        let Some(tx) = self.transmissions.get(&tx_id).cloned() else {
            return;
        };

        // Sender-side: radio is free again.
        let mut resume_mac = false;
        if let Some((state, flags)) = self.nodes.parts_mut(&tx.sender) {
            *flags &= !FLAG_TRANSMITTING;
            if !state.os_buffer.is_empty() && *flags & FLAG_MAC_SCHEDULED == 0 {
                *flags |= FLAG_MAC_SCHEDULED;
                resume_mac = true;
            }
        }
        if resume_mac {
            self.queue.push(
                now,
                EventKind::MacTry {
                    node: tx.sender,
                    deferred: false,
                },
            );
        }

        // Physical verdicts: consume the precomputed shard verdict when
        // its state fingerprint still holds, otherwise compute inline.
        // Both paths run the same pure function over the same state
        // (`shard::phys_verdicts`), so the verdict list — and with it
        // every downstream rng draw, stat and emission — is identical at
        // any shard count.
        let mut verdicts = std::mem::take(&mut self.vd_scratch);
        verdicts.clear();
        let cached = if self.config.shards > 1 {
            self.shard_cache.remove(&tx_id)
        } else {
            None
        };
        match cached {
            Some(entry) if self.verdict_still_valid(&entry, &tx) => {
                self.shard_hits += 1;
                verdicts.extend_from_slice(&entry.verdicts);
            }
            cached => {
                if cached.is_some() {
                    self.shard_stale += 1;
                }
                let mut scratch = std::mem::take(&mut self.phys_scratch);
                let args = PhysArgs {
                    config: &self.config,
                    motions: &self.motions,
                    transmissions: &self.transmissions,
                    tx_by_sender: &self.tx_by_sender,
                    node_grid: &self.node_grid,
                    tx_grid: &self.tx_grid,
                };
                shard::phys_verdicts(&args, &tx, &mut verdicts, &mut scratch);
                self.phys_scratch = scratch;
            }
        }
        // Commit: in-range receivers in ascending id order. The
        // per-receiver baseline-loss rolls below consume the shared rng
        // stream, so verdict *order* is part of the replay contract.
        let mut deliveries = std::mem::take(&mut self.dl_scratch);
        deliveries.clear();
        for &(r, outcome) in &verdicts {
            match outcome {
                PhysOutcome::HalfDuplex => {
                    self.stats.frames_half_duplex += 1;
                    self.emit(r.0, Phase::Radio, TraceKind::FrameHalfDuplex { tx: tx_id });
                    continue;
                }
                PhysOutcome::Collided => {
                    self.stats.frames_collided += 1;
                    self.emit(r.0, Phase::Radio, TraceKind::FrameCollided { tx: tx_id });
                    continue;
                }
                PhysOutcome::Survivor => {}
            }
            if self.rng.chance(baseline_loss) {
                self.stats.frames_lost_random += 1;
                self.emit(r.0, Phase::Radio, TraceKind::FrameLostRandom { tx: tx_id });
                continue;
            }
            // Adversarial wire faults (DST layer), decided after the
            // natural loss processes so the kernel rng stream above stays
            // untouched; every roll consumes the plan-owned stream only,
            // and the whole block is one branch when no plan is installed.
            if self.faults.is_some() {
                if self.fault_cut(tx.sender, r) {
                    self.stats.frames_fault_cut += 1;
                    self.emit(r.0, Phase::Radio, TraceKind::FaultCut { tx: tx_id });
                    continue;
                }
                if self.fault_roll_drop() {
                    self.stats.frames_fault_dropped += 1;
                    self.emit(r.0, Phase::Radio, TraceKind::FaultDropped { tx: tx_id });
                    continue;
                }
                if let Some(at) = self.fault_roll_delay() {
                    self.stats.frames_fault_delayed += 1;
                    self.emit(r.0, Phase::Radio, TraceKind::FaultDelayed { tx: tx_id });
                    self.fault_enqueue(r, tx_id, tx.frame.clone(), at);
                    continue; // counted as delivered when it arrives
                }
                if let Some(at) = self.fault_roll_dup() {
                    self.stats.frames_fault_duplicated += 1;
                    self.emit(r.0, Phase::Radio, TraceKind::FaultDuplicated { tx: tx_id });
                    self.fault_enqueue(r, tx_id, tx.frame.clone(), at);
                    // and fall through: the original copy arrives now.
                }
            }
            self.stats.frames_delivered += 1;
            if let Some(state) = self.nodes.get_mut(&r) {
                state.stats.bytes_received += tx.frame.wire_bytes as u64;
            }
            if self.sink.is_some() {
                self.emit(
                    r.0,
                    Phase::Radio,
                    TraceKind::FrameDelivered {
                        tx: tx_id,
                        bytes: tx.frame.wire_bytes as u64,
                    },
                );
            }
            deliveries.push(r);
        }
        for &r in &deliveries {
            self.deliver_frame(r, &tx.frame);
        }
        self.vd_scratch = verdicts;
        self.dl_scratch = deliveries;

        // Sender-side transport bookkeeping (retransmission arming).
        if let FrameKind::Data { msg, .. } = tx.frame.kind {
            self.frame_done(tx.sender, msg);
        }

        // Prune transmissions that can no longer overlap anything, and
        // their spatial/per-sender index entries with them.
        let horizon = now.since(SimTime::ZERO + self.max_airtime + self.max_airtime);
        let keep_after = SimTime::ZERO + horizon; // now - 2*max_airtime, saturating
        while let Some((_, id)) = self.tx_prune.pop_until(keep_after) {
            let Some(t) = self.transmissions.remove(&id) else {
                continue;
            };
            self.tx_grid.remove(id);
            // Empty per-sender vecs stay in place: the slot is the
            // sender's identity, and the capacity is reused by its next
            // transmission.
            if let Some(ids) = self.tx_by_sender.get_mut(t.sender.0 as usize) {
                ids.retain(|&x| x != id);
            }
        }
    }

    // ---- fault injection (DST) -------------------------------------------

    /// Whether the installed plan cuts sender→receiver right now
    /// (partition or byzantine silence; consumes no randomness).
    fn fault_cut(&self, s: NodeId, r: NodeId) -> bool {
        self.faults
            .as_ref()
            .is_some_and(|f| f.plan.cuts(s, r, self.now))
    }

    fn fault_roll_drop(&mut self) -> bool {
        self.faults.as_mut().is_some_and(|f| f.roll_drop())
    }

    fn fault_roll_delay(&mut self) -> Option<SimTime> {
        let now = self.now;
        self.faults.as_mut().and_then(|f| f.roll_delay(now))
    }

    fn fault_roll_dup(&mut self) -> Option<SimTime> {
        let now = self.now;
        self.faults.as_mut().and_then(|f| f.roll_dup(now))
    }

    /// Diverts one reception to a scheduled `FaultDeliver` at `at`.
    fn fault_enqueue(&mut self, r: NodeId, tx: u64, frame: Frame, at: SimTime) {
        if let Some(f) = self.faults.as_mut() {
            let id = f.enqueue(r, tx, frame);
            self.queue.push(at, EventKind::FaultDeliver(id));
        }
    }

    /// A fault-delayed or duplicated reception arrives. Reception-side
    /// bookkeeping (delivered count, receiver bytes) happens here, at the
    /// actual delivery instant; the receiver may have churned away since.
    fn fault_deliver(&mut self, id: u64) {
        #[cfg(feature = "prof")]
        let _t = crate::prof::ScopeTimer::start(crate::prof::SCOPE_FAULT);
        let Some(p) = self.faults.as_mut().and_then(|f| f.pending.remove(&id)) else {
            return;
        };
        if !self.nodes.contains_key(&p.receiver) {
            return;
        }
        self.stats.frames_delivered += 1;
        if let Some(state) = self.nodes.get_mut(&p.receiver) {
            state.stats.bytes_received += p.frame.wire_bytes as u64;
        }
        if self.sink.is_some() {
            self.emit(
                p.receiver.0,
                Phase::Radio,
                TraceKind::FrameDelivered {
                    tx: p.tx,
                    bytes: p.frame.wire_bytes as u64,
                },
            );
        }
        self.deliver_frame(p.receiver, &p.frame);
    }

    fn deliver_frame(&mut self, r: NodeId, frame: &Frame) {
        let now = self.now;
        let ack_cfg = self.config.ack;
        match &frame.kind {
            FrameKind::Data {
                msg,
                frag,
                frag_count,
                intended,
                payload,
                msg_wire_bytes,
            } => {
                let plan = {
                    let Some(state) = self.nodes.get_mut(&r) else {
                        return;
                    };
                    state.transport.on_data_frame(
                        r,
                        *msg,
                        *frag,
                        *frag_count,
                        intended,
                        payload,
                        *msg_wire_bytes,
                        frame.sender,
                        ack_cfg.enabled,
                        ack_cfg.ack_delay,
                        now,
                    )
                };
                if let Some(delay) = plan.schedule_ack {
                    let jitter = self.rng.range_u64(0, ACK_JITTER.as_micros().max(1));
                    let tid = TimerId(self.next_timer);
                    self.next_timer += 1;
                    if let Some(state) = self.nodes.get_mut(&r) {
                        state.timers.insert(tid, TimerKind::AckSend(*msg));
                        self.queue.push(
                            now + delay + SimDuration::from_micros(jitter),
                            EventKind::Timer { node: r, id: tid },
                        );
                    }
                }
                if let Some(d) = plan.deliver {
                    self.stats.messages_delivered += 1;
                    if let Some(state) = self.nodes.get_mut(&r) {
                        state.stats.messages_delivered += 1;
                        if d.overheard {
                            state.stats.messages_overheard += 1;
                        }
                    }
                    if self.sink.is_some() {
                        self.emit(
                            r.0,
                            Phase::Transport,
                            TraceKind::MessageDelivered {
                                origin: u64::from(msg.origin.0),
                                seq: msg.seq,
                                bytes: d.wire_bytes as u64,
                                overheard: d.overheard,
                            },
                        );
                    }
                    let meta = MessageMeta {
                        from: d.from,
                        intended: d.intended,
                        overheard: d.overheard,
                        wire_bytes: d.wire_bytes,
                    };
                    let payload = d.payload;
                    self.call_app(r, move |app, ctx| app.on_message(ctx, meta, payload));
                }
            }
            FrameKind::Ack { msg, received } => {
                if msg.origin != r {
                    return;
                }
                let completed = {
                    let Some(state) = self.nodes.get_mut(&r) else {
                        return;
                    };
                    state.transport.on_ack_frame(*msg, frame.sender, received)
                };
                if let Some((handle, timer)) = completed {
                    if let Some(tid) = timer {
                        if let Some(state) = self.nodes.get_mut(&r) {
                            state.timers.remove(&tid);
                        }
                    }
                    self.emit(
                        r.0,
                        Phase::Transport,
                        TraceKind::MessageAcked { seq: msg.seq },
                    );
                    self.call_app(r, move |app, ctx| app.on_send_result(ctx, handle, true));
                }
            }
        }
    }

    fn frame_done(&mut self, sender: NodeId, msg: MessageId) {
        let now = self.now;
        let retr_timeout = self.config.ack.retr_timeout;
        let arm = {
            let Some(state) = self.nodes.get_mut(&sender) else {
                return;
            };
            state.transport.on_frame_done(msg)
        };
        if arm {
            let tid = TimerId(self.next_timer);
            self.next_timer += 1;
            if let Some(state) = self.nodes.get_mut(&sender) {
                state.timers.insert(tid, TimerKind::Retr(msg));
                state.transport.set_retr_timer(msg, tid);
                self.queue.push(
                    now + retr_timeout,
                    EventKind::Timer {
                        node: sender,
                        id: tid,
                    },
                );
            }
        }
    }

    // ---- timers ----------------------------------------------------------

    fn fire_timer(&mut self, node: NodeId, id: TimerId) {
        let kind = {
            let Some(state) = self.nodes.get_mut(&node) else {
                return;
            };
            let Some(kind) = state.timers.remove(&id) else {
                return; // cancelled
            };
            kind
        };
        match kind {
            TimerKind::App(tag) => self.call_app(node, move |app, ctx| app.on_timer(ctx, tag)),
            TimerKind::AckSend(msg) => {
                let ack = {
                    let Some(state) = self.nodes.get_mut(&node) else {
                        return;
                    };
                    state.transport.make_ack(node, msg)
                };
                if let Some(frame) = ack {
                    if self.sink.is_some() {
                        self.emit(
                            node.0,
                            Phase::Transport,
                            TraceKind::AckSent {
                                origin: u64::from(msg.origin.0),
                                seq: msg.seq,
                                bytes: frame.wire_bytes as u64,
                            },
                        );
                    }
                    self.pace_frame(node, frame, SendClass::Ack);
                }
            }
            TimerKind::Retr(msg) => {
                let max_retr = self.config.ack.max_retr;
                let plan = {
                    let Some(state) = self.nodes.get_mut(&node) else {
                        return;
                    };
                    state.transport.on_retr_timer(node, msg, max_retr)
                };
                match plan {
                    RetrPlan::Nothing => {}
                    RetrPlan::GiveUp(handle) => {
                        self.stats.messages_failed += 1;
                        self.emit(
                            node.0,
                            Phase::Transport,
                            TraceKind::MessageFailed { seq: msg.seq },
                        );
                        self.call_app(node, move |app, ctx| {
                            app.on_send_result(ctx, handle, false);
                        });
                    }
                    RetrPlan::Retransmit(frames) => {
                        self.stats.frames_retransmitted += frames.len() as u64;
                        if self.sink.is_some() {
                            self.emit(
                                node.0,
                                Phase::Transport,
                                TraceKind::Retransmit {
                                    seq: msg.seq,
                                    frames: frames.len() as u64,
                                },
                            );
                        }
                        for frame in frames {
                            self.pace_frame(node, frame, SendClass::Repair);
                        }
                    }
                }
            }
        }
    }
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("now", &self.now)
            .field("nodes", &self.nodes.len())
            .field("pending_events", &self.queue.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AckConfig;

    /// Records everything it receives.
    struct Sink {
        received: Vec<(MessageMeta, Bytes)>,
    }
    impl Sink {
        fn new() -> Self {
            Self {
                received: Vec::new(),
            }
        }
    }
    impl Application for Sink {
        fn on_start(&mut self, _ctx: &mut Context) {}
        fn on_message(&mut self, _ctx: &mut Context, meta: MessageMeta, payload: Bytes) {
            self.received.push((meta, payload));
        }
    }

    /// Sends `count` messages of `size` bytes to `intended` at start.
    struct Blaster {
        count: usize,
        size: usize,
        intended: Vec<NodeId>,
        results: Vec<bool>,
    }
    impl Blaster {
        fn new(count: usize, size: usize, intended: Vec<NodeId>) -> Self {
            Self {
                count,
                size,
                intended,
                results: Vec::new(),
            }
        }
    }
    impl Application for Blaster {
        fn on_start(&mut self, ctx: &mut Context) {
            for i in 0..self.count {
                let body = vec![(i % 256) as u8; self.size];
                ctx.broadcast(Bytes::from(body), &self.intended);
            }
        }
        fn on_message(&mut self, _ctx: &mut Context, _meta: MessageMeta, _payload: Bytes) {}
        fn on_send_result(&mut self, _ctx: &mut Context, _m: MessageHandle, delivered: bool) {
            self.results.push(delivered);
        }
    }

    fn lossless() -> SimConfig {
        let mut c = SimConfig::default();
        c.radio.baseline_loss = 0.0;
        c
    }

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn basic_delivery_between_neighbors() {
        let mut w = World::new(lossless(), 1);
        w.add_node(
            Position::new(0.0, 0.0),
            Box::new(Blaster::new(1, 500, vec![NodeId(1)])),
        );
        let b = w.add_node(Position::new(30.0, 0.0), Box::new(Sink::new()));
        w.run_until(secs(1.0));
        let sink = w.app::<Sink>(b).expect("sink");
        assert_eq!(sink.received.len(), 1);
        assert_eq!(sink.received[0].1.len(), 500);
        assert!(!sink.received[0].0.overheard);
    }

    #[test]
    fn out_of_range_not_delivered() {
        let mut w = World::new(lossless(), 1);
        w.add_node(
            Position::new(0.0, 0.0),
            Box::new(Blaster::new(1, 500, vec![])),
        );
        let far = w.add_node(Position::new(500.0, 0.0), Box::new(Sink::new()));
        w.run_until(secs(1.0));
        assert!(w.app::<Sink>(far).expect("sink").received.is_empty());
    }

    #[test]
    fn overhearing_sets_flag() {
        let mut w = World::new(lossless(), 1);
        w.add_node(
            Position::new(0.0, 0.0),
            Box::new(Blaster::new(1, 200, vec![NodeId(1)])),
        );
        w.add_node(Position::new(30.0, 0.0), Box::new(Sink::new()));
        let eavesdropper = w.add_node(Position::new(0.0, 30.0), Box::new(Sink::new()));
        w.run_until(secs(1.0));
        let sink = w.app::<Sink>(eavesdropper).expect("sink");
        assert_eq!(sink.received.len(), 1);
        assert!(sink.received[0].0.overheard);
    }

    #[test]
    fn reliable_send_reports_success() {
        let mut w = World::new(lossless(), 3);
        let a = w.add_node(
            Position::new(0.0, 0.0),
            Box::new(Blaster::new(1, 5000, vec![NodeId(1)])),
        );
        w.add_node(Position::new(30.0, 0.0), Box::new(Sink::new()));
        w.run_until(secs(2.0));
        assert_eq!(w.app::<Blaster>(a).expect("app").results, vec![true]);
    }

    #[test]
    fn retransmission_overcomes_heavy_loss() {
        let mut c = SimConfig::default();
        c.radio.baseline_loss = 0.5;
        let mut w = World::new(c, 7);
        let a = w.add_node(
            Position::new(0.0, 0.0),
            Box::new(Blaster::new(5, 1000, vec![NodeId(1)])),
        );
        let b = w.add_node(Position::new(30.0, 0.0), Box::new(Sink::new()));
        w.run_until(secs(5.0));
        let delivered = w.app::<Sink>(b).expect("sink").received.len();
        assert!(
            delivered >= 4,
            "ack/retransmission should deliver most messages under 50% loss, got {delivered}/5"
        );
        let results = &w.app::<Blaster>(a).expect("app").results;
        assert_eq!(results.len(), 5, "every message must resolve");
    }

    #[test]
    fn unreliable_send_has_no_result_callback() {
        let mut w = World::new(lossless(), 1);
        let a = w.add_node(
            Position::new(0.0, 0.0),
            Box::new(Blaster::new(1, 100, vec![])),
        );
        w.add_node(Position::new(30.0, 0.0), Box::new(Sink::new()));
        w.run_until(secs(1.0));
        assert!(w.app::<Blaster>(a).expect("app").results.is_empty());
    }

    #[test]
    fn raw_udp_overflows_os_buffer() {
        let mut c = SimConfig::raw_udp();
        c.radio.baseline_loss = 0.0;
        let mut w = World::new(c, 5);
        // 2 MB injected instantly into a 1 MB buffer.
        w.add_node(
            Position::new(0.0, 0.0),
            Box::new(Blaster::new(1400, 1400, vec![])),
        );
        let b = w.add_node(Position::new(30.0, 0.0), Box::new(Sink::new()));
        w.run_until(secs(10.0));
        assert!(w.stats().frames_dropped_os > 0, "expected OS buffer drops");
        let got = w.app::<Sink>(b).expect("sink").received.len();
        assert!(
            got < 1100,
            "reception should be capped by buffer overflow, got {got}/1400"
        );
    }

    #[test]
    fn leaky_bucket_avoids_overflow() {
        let mut c = SimConfig::leaky_only();
        c.radio.baseline_loss = 0.0;
        let mut w = World::new(c, 5);
        w.add_node(
            Position::new(0.0, 0.0),
            Box::new(Blaster::new(1400, 1400, vec![])),
        );
        let b = w.add_node(Position::new(30.0, 0.0), Box::new(Sink::new()));
        w.run_until(secs(10.0));
        assert_eq!(w.stats().frames_dropped_os, 0);
        let got = w.app::<Sink>(b).expect("sink").received.len();
        assert!(
            got > 1300,
            "paced sending should deliver nearly all, got {got}/1400"
        );
    }

    #[test]
    fn hidden_terminals_collide() {
        // With short carrier sense (factor 1.0), A and C cannot hear each
        // other but both reach B: classic hidden-terminal collisions at B.
        // (The default 2× sense range eliminates this geometry.)
        let mut c = lossless();
        c.ack = AckConfig::disabled();
        c.radio.cs_range_factor = 1.0;
        let mut w = World::new(c, 11);
        w.add_node(
            Position::new(0.0, 0.0),
            Box::new(Blaster::new(300, 1400, vec![])),
        );
        let b = w.add_node(Position::new(70.0, 0.0), Box::new(Sink::new()));
        w.add_node(
            Position::new(140.0, 0.0),
            Box::new(Blaster::new(300, 1400, vec![])),
        );
        w.run_until(secs(10.0));
        assert!(
            w.stats().frames_collided > 10,
            "expected hidden-terminal collisions, got {}",
            w.stats().frames_collided
        );
        let got = w.app::<Sink>(b).expect("sink").received.len();
        assert!(
            got < 600,
            "collisions should cost receptions, got {got}/600"
        );
    }

    #[test]
    fn csma_defers_for_in_range_sender() {
        // Both senders hear each other: carrier sense should prevent most
        // collisions even without acks.
        let mut c = lossless();
        c.ack = AckConfig::disabled();
        let mut w = World::new(c, 13);
        w.add_node(
            Position::new(0.0, 0.0),
            Box::new(Blaster::new(200, 1400, vec![])),
        );
        let b = w.add_node(Position::new(30.0, 0.0), Box::new(Sink::new()));
        w.add_node(
            Position::new(60.0, 0.0),
            Box::new(Blaster::new(200, 1400, vec![])),
        );
        w.run_until(secs(10.0));
        let got = w.app::<Sink>(b).expect("sink").received.len();
        assert!(
            got > 350,
            "carrier sense should allow most frames through, got {got}/400"
        );
    }

    #[test]
    fn node_removal_stops_reception() {
        let mut w = World::new(lossless(), 1);
        w.add_node(
            Position::new(0.0, 0.0),
            Box::new(Blaster::new(200, 1400, vec![])),
        );
        let b = w.add_node(Position::new(30.0, 0.0), Box::new(Sink::new()));
        w.schedule(secs(0.05), move |w| w.remove_node(b));
        w.run_until(secs(5.0));
        assert!(!w.is_alive(b));
        assert!(w.app::<Sink>(b).is_none());
    }

    #[test]
    fn mobility_breaks_connectivity() {
        let mut w = World::new(lossless(), 1);
        struct Periodic;
        impl Application for Periodic {
            fn on_start(&mut self, ctx: &mut Context) {
                ctx.set_timer(SimDuration::from_millis(100), 0);
            }
            fn on_message(&mut self, _: &mut Context, _: MessageMeta, _: Bytes) {}
            fn on_timer(&mut self, ctx: &mut Context, _tag: u64) {
                ctx.broadcast(Bytes::from_static(b"tick"), &[]);
                ctx.set_timer(SimDuration::from_millis(100), 0);
            }
        }
        w.add_node(Position::new(0.0, 0.0), Box::new(Periodic));
        let b = w.add_node(Position::new(30.0, 0.0), Box::new(Sink::new()));
        w.run_until(secs(2.0));
        let before = w.app::<Sink>(b).expect("sink").received.len();
        assert!(before >= 15, "should receive most ticks, got {before}");
        // Walk far out of range quickly.
        w.move_node(b, Position::new(1000.0, 0.0), 100.0);
        w.run_until(secs(15.0));
        let during = w.app::<Sink>(b).expect("sink").received.len();
        w.run_until(secs(20.0));
        let after = w.app::<Sink>(b).expect("sink").received.len();
        assert_eq!(during, after, "no reception once out of range");
    }

    #[test]
    fn neighbors_reflect_positions() {
        let mut w = World::new(lossless(), 1);
        let a = w.add_node(Position::new(0.0, 0.0), Box::new(Sink::new()));
        let b = w.add_node(Position::new(50.0, 0.0), Box::new(Sink::new()));
        let c = w.add_node(Position::new(200.0, 0.0), Box::new(Sink::new()));
        assert_eq!(w.neighbors(a), [b]);
        w.set_position(c, Position::new(60.0, 0.0));
        // Already ascending by id — the scratch slice is sorted by
        // construction in both spatial-index modes.
        assert_eq!(w.neighbors(a), [b, c]);
    }

    #[test]
    fn grid_and_brute_force_replay_identically() {
        let run = |index: SpatialIndex, rebucket_ms: u64| {
            let mut c = SimConfig::default();
            c.radio.baseline_loss = 0.1;
            c.spatial.index = index;
            c.spatial.rebucket_interval = SimDuration::from_millis(rebucket_ms);
            let mut w = World::new(c, 42);
            w.add_node(
                Position::new(0.0, 0.0),
                Box::new(Blaster::new(40, 1200, vec![NodeId(1)])),
            );
            let b = w.add_node(Position::new(30.0, 0.0), Box::new(Sink::new()));
            w.add_node(
                Position::new(60.0, 30.0),
                Box::new(Blaster::new(40, 900, vec![])),
            );
            let far = w.add_node(Position::new(400.0, 0.0), Box::new(Sink::new()));
            // A walker crossing the chatter, plus churn mid-run.
            w.move_node(far, Position::new(0.0, 0.0), 40.0);
            w.schedule(secs(2.0), move |w| w.remove_node(b));
            w.schedule(secs(3.0), |w| {
                w.add_node(Position::new(20.0, 20.0), Box::new(Sink::new()));
            });
            w.run_until(secs(8.0));
            w.stats().clone()
        };
        let brute = run(SpatialIndex::BruteForce, 0);
        assert_eq!(run(SpatialIndex::Grid, 0), brute);
        // Lazy re-bucketing pads queries instead of moving buckets; the
        // results must not change either way.
        assert_eq!(run(SpatialIndex::Grid, 500), brute);
        assert!(brute.frames_delivered > 0);
    }

    #[test]
    fn sharded_stepping_is_invisible_and_actually_parallel() {
        // The shard gate without the replay-digest feature: outcomes must
        // be bit-identical at any shard count, and — to keep the gate
        // non-vacuous — the sharded runs must actually commit verdicts
        // from the concurrent cache, not fall back to inline recompute.
        let run = |shards: u32| {
            let mut c = SimConfig::default();
            c.radio.baseline_loss = 0.05;
            c.radio.interference_range_factor = 4.0;
            c.shards = shards;
            let mut w = World::new(c, 11);
            // Cluster pairs strung along x, chattering in step so several
            // transmissions are always in flight at once.
            for i in 0..12u32 {
                let x = f64::from(i) * 400.0;
                w.add_node(
                    Position::new(x, 0.0),
                    Box::new(Blaster::new(60, 700, vec![])),
                );
                w.add_node(Position::new(x + 25.0, 0.0), Box::new(Sink::new()));
            }
            w.run_until(secs(4.0));
            let (rounds, hits, _stale) = w.shard_counters();
            (w.stats().clone(), rounds, hits)
        };
        let (seq, rounds0, hits0) = run(1);
        assert!(seq.frames_delivered > 0);
        assert_eq!((rounds0, hits0), (0, 0), "sequential path must not shard");
        for shards in [2u32, 4, 8] {
            let (stats, rounds, hits) = run(shards);
            assert_eq!(stats, seq, "shards={shards} changed outcomes");
            assert!(
                rounds > 0 && hits > 0,
                "shards={shards} never exercised the verdict cache \
                 (rounds={rounds}, hits={hits})"
            );
        }
    }

    #[test]
    fn identical_seeds_replay_identically() {
        let run = |seed: u64| {
            let mut c = SimConfig::default();
            c.radio.baseline_loss = 0.1;
            let mut w = World::new(c, seed);
            w.add_node(
                Position::new(0.0, 0.0),
                Box::new(Blaster::new(50, 1200, vec![NodeId(1)])),
            );
            w.add_node(Position::new(30.0, 0.0), Box::new(Sink::new()));
            w.add_node(
                Position::new(0.0, 30.0),
                Box::new(Blaster::new(50, 900, vec![])),
            );
            w.run_until(secs(10.0));
            w.stats().clone()
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100));
    }

    #[test]
    fn timers_fire_and_cancel() {
        struct TimerApp {
            fired: Vec<u64>,
        }
        impl Application for TimerApp {
            fn on_start(&mut self, ctx: &mut Context) {
                ctx.set_timer(SimDuration::from_millis(10), 1);
                let t2 = ctx.set_timer(SimDuration::from_millis(20), 2);
                ctx.set_timer(SimDuration::from_millis(30), 3);
                ctx.cancel_timer(t2);
            }
            fn on_message(&mut self, _: &mut Context, _: MessageMeta, _: Bytes) {}
            fn on_timer(&mut self, _ctx: &mut Context, tag: u64) {
                self.fired.push(tag);
            }
        }
        let mut w = World::new(lossless(), 1);
        let a = w.add_node(
            Position::new(0.0, 0.0),
            Box::new(TimerApp { fired: Vec::new() }),
        );
        w.run_until(secs(1.0));
        assert_eq!(w.app::<TimerApp>(a).expect("app").fired, vec![1, 3]);
    }

    #[test]
    fn stats_count_bytes_and_messages() {
        let mut w = World::new(lossless(), 1);
        w.add_node(
            Position::new(0.0, 0.0),
            Box::new(Blaster::new(3, 1000, vec![NodeId(1)])),
        );
        let b = w.add_node(Position::new(30.0, 0.0), Box::new(Sink::new()));
        w.run_until(secs(2.0));
        let s = w.stats();
        assert_eq!(s.messages_sent, 3);
        assert_eq!(s.messages_delivered, 3);
        assert!(s.bytes_sent >= 3000);
        assert!(s.ack_bytes_sent > 0);
        assert!(s.data_bytes_sent > s.ack_bytes_sent);
        let nb = w.node_stats(b).expect("alive");
        assert_eq!(nb.messages_delivered, 3);
        assert!(nb.frames_sent > 0, "receiver sent acks");
    }

    #[test]
    fn with_app_can_send_from_outside() {
        struct Trigger;
        impl Application for Trigger {
            fn on_start(&mut self, _ctx: &mut Context) {}
            fn on_message(&mut self, _: &mut Context, _: MessageMeta, _: Bytes) {}
        }
        let mut w = World::new(lossless(), 1);
        let a = w.add_node(Position::new(0.0, 0.0), Box::new(Trigger));
        let b = w.add_node(Position::new(30.0, 0.0), Box::new(Sink::new()));
        w.schedule(secs(1.0), move |w| {
            w.with_app::<Trigger, _>(a, |_app, ctx| {
                ctx.broadcast(Bytes::from_static(b"late"), &[]);
            });
        });
        w.run_until(secs(0.5));
        assert!(w.app::<Sink>(b).expect("sink").received.is_empty());
        w.run_until(secs(2.0));
        assert_eq!(w.app::<Sink>(b).expect("sink").received.len(), 1);
    }

    #[test]
    fn energy_grows_with_traffic_and_time() {
        let mut w = World::new(lossless(), 1);
        w.add_node(
            Position::new(0.0, 0.0),
            Box::new(Blaster::new(20, 1400, vec![NodeId(1)])),
        );
        w.add_node(Position::new(30.0, 0.0), Box::new(Sink::new()));
        let model = crate::stats::EnergyModel::default();
        w.run_until(secs(1.0));
        let early = w.energy_j(&model);
        w.run_until(secs(10.0));
        let late = w.energy_j(&model);
        assert!(early > 0.0);
        assert!(late > early, "idle listening keeps accruing");
        // Receiver actually accounted received bytes.
        let rx = w.node_stats(NodeId(1)).expect("alive");
        assert!(
            rx.bytes_received >= 20 * 1400,
            "rx bytes = {}",
            rx.bytes_received
        );
    }

    #[test]
    fn world_is_send() {
        // The parallel sweep executor in pds-bench moves whole worlds onto
        // worker threads; this fails to compile if any kernel field (apps,
        // sinks, scheduled controls, ...) loses `Send`.
        fn assert_send<T: Send>() {}
        assert_send::<World>();
    }

    #[test]
    fn run_until_advances_clock_without_events() {
        let mut w = World::new(lossless(), 1);
        w.run_until(secs(3.0));
        assert_eq!(w.now(), secs(3.0));
        w.run_for(SimDuration::from_secs(2));
        assert_eq!(w.now(), secs(5.0));
    }
}
