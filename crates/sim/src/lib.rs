//! Discrete-event wireless broadcast network simulator for the PDS
//! reproduction.
//!
//! This crate is the substrate standing in for the paper's two evaluation
//! platforms: the 5-phone Android prototype (single-hop calibration, §V of
//! the paper) and NS-3 with a Wi-Fi MAC stack (multi-hop evaluation, §VI).
//! It models exactly the mechanisms the paper identifies as determining
//! performance:
//!
//! * **Broadcast medium with overhearing** — every frame reaches all alive
//!   nodes within radio range, intended or not; the application is told
//!   whether it was an intended receiver ([`MessageMeta::overheard`]).
//! * **OS UDP send-buffer overflow** — a finite per-node buffer drained at
//!   the MAC broadcast bitrate; applications that inject faster lose frames
//!   silently, reproducing the prototype's 14 % raw-UDP reception (§V-2).
//! * **Leaky bucket pacing** — token-bucket injection
//!   (`BucketCapacity`, `LeakingRate`) in front of the OS buffer
//!   ([`SenderMode::LeakyBucket`]).
//! * **CSMA with collisions** — carrier sense plus random backoff; frames
//!   overlapping in time at an in-range receiver are lost there (including
//!   hidden-terminal collisions).
//! * **Application-level ack/retransmission** — per-message selective acks
//!   with `RetrTimeout` / `MaxRetrTime` (§V-1), with message fragmentation
//!   into 1.5 KB frames and reassembly.
//!
//! Protocols plug in by implementing [`Application`]; scenarios drive a
//! [`World`] forward in virtual time.
//!
//! # Examples
//!
//! ```
//! use pds_sim::{Application, Context, MessageMeta, Position, SimConfig, SimTime, World};
//! use bytes::Bytes;
//!
//! struct Pinger;
//! struct Echo(Option<Vec<u8>>);
//!
//! impl Application for Pinger {
//!     fn on_start(&mut self, ctx: &mut Context) {
//!         ctx.broadcast(Bytes::from_static(b"ping"), &[]);
//!     }
//!     fn on_message(&mut self, _ctx: &mut Context, _meta: MessageMeta, _payload: bytes::Bytes) {}
//! }
//! impl Application for Echo {
//!     fn on_start(&mut self, _ctx: &mut Context) {}
//!     fn on_message(&mut self, _ctx: &mut Context, _meta: MessageMeta, payload: bytes::Bytes) {
//!         self.0 = Some(payload.to_vec());
//!     }
//! }
//!
//! let mut world = World::new(SimConfig::default(), 42);
//! world.add_node(Position::new(0.0, 0.0), Box::new(Pinger));
//! let echo = world.add_node(Position::new(10.0, 0.0), Box::new(Echo(None)));
//! world.run_until(SimTime::from_secs_f64(1.0));
//! let received = world.app::<Echo>(echo).expect("echo app").0.clone();
//! assert_eq!(received.as_deref(), Some(&b"ping"[..]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
#[cfg(feature = "replay-digest")]
mod digest;
mod events;
mod fault;
mod radio;
mod shard;
mod slab;
mod spatial;
mod stats;
mod transport;
mod wheel;
mod world;

#[cfg(feature = "prof")]
pub mod prof;

pub use config::{
    AckConfig, RadioConfig, Scheduler, SenderMode, SimConfig, SpatialConfig, SpatialIndex,
};
pub use fault::{ChurnStorm, FaultPlan, PartitionWindow, SilenceWindow};
pub use radio::Position;
pub use stats::{EnergyModel, NodeStats, PhaseBytes, Stats};
pub use wheel::TimerWheel;
pub use world::World;

// The sans-io substrate — node identity, the Application seam, virtual
// time, and the deterministic RNG — lives in `pds-core` (DESIGN.md §13:
// core sits below every kernel backend). Re-exported here so simulator
// users keep their `pds_sim::…` paths.
pub use pds_core::{
    Application, Command, Context, MessageHandle, MessageMeta, NodeId, SimDuration, SimRng,
    SimTime, TimerId,
};

// Re-exported so applications can emit trace events through [`Context`]
// without naming the observability crate.
pub use pds_obs as obs;
pub use pds_obs::{Phase, TraceEvent, TraceKind, TraceSink};
