//! Application-level reliable transport: fragmentation, reassembly,
//! selective acknowledgements and retransmission (§V-1 of the paper).
//!
//! Messages whose intended-receiver list is non-empty are tracked: every
//! intended receiver acknowledges with a fragment bitmap, and the sender
//! retransmits missing fragments up to `MaxRetrTime` times, waiting
//! `RetrTimeout` after the last fragment of each attempt leaves the radio.
//! Messages with an empty intended list ("all neighbors") are fire-and-forget,
//! exactly like PDS's flooded queries.

use crate::config::SimConfig;
use crate::radio::{FragSet, Frame, FrameKind};
use bytes::Bytes;
use pds_core::{MessageHandle, NodeId, TimerId};
use pds_core::{SimDuration, SimTime};
use pds_det::DetMap;
use std::fmt;
use std::sync::Arc;

/// Fixed wire overhead of a data frame before the per-receiver id list.
pub(crate) const DATA_HEADER_BASE: usize = 40;
/// Wire bytes per intended-receiver id in a data frame header.
pub(crate) const PER_RECEIVER_BYTES: usize = 4;
/// Fixed wire overhead of an ack frame before the fragment bitmap.
pub(crate) const ACK_HEADER_BASE: usize = 32;

/// Globally unique message identity: (origin node, per-origin sequence).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) struct MessageId {
    pub origin: NodeId,
    pub seq: u64,
}

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.origin, self.seq)
    }
}

#[derive(Debug)]
struct Outgoing {
    handle: MessageHandle,
    payload: Bytes,
    intended: Arc<[NodeId]>,
    frag_count: u32,
    frag_payload: usize,
    msg_wire_bytes: u32,
    /// Traffic class carried by every frame of this message, including
    /// retransmissions (see [`pds_obs::class`]).
    class: u8,
    acked: DetMap<NodeId, FragSet>,
    /// 0 = initial transmission, 1..=max_retr are retransmissions.
    attempt: u32,
    /// Frames of the current attempt not yet off the radio (or dropped).
    in_flight: u32,
    retr_timer: Option<TimerId>,
}

impl Outgoing {
    fn fully_acked(&self) -> bool {
        self.intended.iter().all(|r| {
            self.acked
                .get(r)
                .is_some_and(|s| s.is_complete(self.frag_count))
        })
    }

    /// Fragments still missing at any intended receiver, each with the
    /// receivers that miss it.
    fn missing(&self) -> Vec<(u32, Arc<[NodeId]>)> {
        let mut out = Vec::new();
        for frag in 0..self.frag_count {
            let missing_at: Arc<[NodeId]> = self
                .intended
                .iter()
                .copied()
                .filter(|r| !self.acked.get(r).is_some_and(|s| s.contains(frag)))
                .collect();
            if !missing_at.is_empty() {
                out.push((frag, missing_at));
            }
        }
        out
    }
}

/// Receive-side reassembly state for one message.
///
/// Two-phase by design (the kernel memory diet): while fragments are
/// still arriving the entry holds the full assembly state — shared
/// payload, fragment bitmap, receiver list. The moment the message is
/// delivered, all of that collapses into the small [`Incoming::Done`]
/// tombstone. This is what bounds receive-side memory at city scale:
/// delivered messages linger for `DELIVERED_HORIZON` (a minute) purely
/// for duplicate suppression and re-acking, and without the collapse
/// every one of them would pin its payload `Bytes` (keeping the sender's
/// buffer alive through the refcount) plus a map entry of ~10 words.
#[derive(Debug)]
enum Incoming {
    /// Fragments still arriving. Boxed: the common steady-state entry is
    /// a delivered tombstone, so the enum is sized for `Done` and the
    /// assembling state pays one extra indirection instead.
    Assembling(Box<Assembling>),
    /// Delivered. Everything duplicate suppression and re-acking need —
    /// and nothing else. The complete ack bitmap is rebuilt on demand
    /// from `frag_count` ([`FragSet::full`]), byte-identical on the wire.
    Done {
        frag_count: u32,
        intended_me: bool,
        ack_timer_pending: bool,
        last_activity: SimTime,
    },
}

#[derive(Debug)]
struct Assembling {
    /// The whole message payload, shared with every data frame of the
    /// message (DESIGN.md §11): reassembly only tracks *which* fragments
    /// arrived in `received`; their bytes are already here, so delivery is
    /// a refcount bump, never a copy.
    payload: Bytes,
    received: FragSet,
    frag_count: u32,
    from: NodeId,
    intended: Arc<[NodeId]>,
    intended_me: bool,
    msg_wire_bytes: u32,
    ack_timer_pending: bool,
    last_activity: SimTime,
}

/// Per-node transport state.
#[derive(Debug, Default)]
pub(crate) struct Transport {
    outgoing: DetMap<MessageId, Outgoing>,
    incoming: DetMap<MessageId, Incoming>,
    /// High-water mark of `Outgoing::attempt` across every message this
    /// node ever tracked — surfaced through `World::max_retr_attempt` as
    /// the DST bounded-retry witness.
    max_attempt: u32,
}

/// Result of submitting a message for transmission.
pub(crate) struct SendPlan {
    #[cfg_attr(not(test), allow(dead_code))]
    pub msg: MessageId,
    pub frames: Vec<Frame>,
    /// Whether the message is tracked for ack/retransmission (the kernel
    /// does not branch on this — frame completion events drive the timer —
    /// but tests assert it).
    #[cfg_attr(not(test), allow(dead_code))]
    pub tracked: bool,
}

/// What the kernel must do after a data frame is received.
#[derive(Debug)]
pub(crate) struct DataPlan {
    /// Deliver this completed message to the application.
    pub deliver: Option<DeliverPlan>,
    /// Schedule an ack transmission after the given delay (only if none is
    /// already pending for this message).
    pub schedule_ack: Option<SimDuration>,
}

#[derive(Debug)]
pub(crate) struct DeliverPlan {
    pub from: NodeId,
    pub intended: Vec<NodeId>,
    pub overheard: bool,
    pub wire_bytes: usize,
    pub payload: Bytes,
}

/// What the kernel must do after a retransmission timer fires.
#[derive(Debug)]
pub(crate) enum RetrPlan {
    /// Message already completed or unknown; nothing to do.
    Nothing,
    /// Retransmit these frames (missing fragments only).
    Retransmit(Vec<Frame>),
    /// Retry budget exhausted; report failure to the application.
    GiveUp(MessageHandle),
}

impl Transport {
    pub fn new() -> Self {
        Self::default()
    }

    /// Usable payload bytes per fragment given the intended-receiver count.
    ///
    /// # Panics
    ///
    /// Panics if the header alone would exceed the frame size (receiver list
    /// too long for the MTU).
    pub fn frag_payload_size(cfg: &SimConfig, receivers: usize) -> usize {
        let header = DATA_HEADER_BASE + PER_RECEIVER_BYTES * receivers;
        assert!(
            header < cfg.radio.max_frame_bytes,
            "intended receiver list ({receivers} entries) does not fit a {}-byte frame",
            cfg.radio.max_frame_bytes
        );
        cfg.radio.max_frame_bytes - header
    }

    /// Fragments `payload` and registers tracking state when reliable.
    ///
    /// `frames` is a recycled buffer (cleared here) that the built frames
    /// are pushed into; it is handed back via [`SendPlan::frames`] so the
    /// caller can drain and reuse it.
    #[allow(clippy::too_many_arguments)] // mirrors the frame-header fields
    pub fn send_message(
        &mut self,
        origin: NodeId,
        seq: u64,
        handle: MessageHandle,
        payload: Bytes,
        intended: Vec<NodeId>,
        class: u8,
        cfg: &SimConfig,
        mut frames: Vec<Frame>,
    ) -> SendPlan {
        let msg = MessageId { origin, seq };
        // One shared receiver list for every fragment (and the tracking
        // state): a 256 KB message fans out into ~170 frames without ~170
        // copies of the list.
        let intended: Arc<[NodeId]> = intended.into();
        let frag_payload = Self::frag_payload_size(cfg, intended.len());
        let frag_count = (payload.len().max(1)).div_ceil(frag_payload) as u32;
        let header = DATA_HEADER_BASE + PER_RECEIVER_BYTES * intended.len();
        let msg_wire_bytes = (payload.len() + frag_count as usize * header) as u32;
        frames.clear();
        build_frames_into(
            &mut frames,
            msg,
            origin,
            &payload,
            frag_payload,
            frag_count,
            msg_wire_bytes,
            class,
            (0..frag_count).map(|f| (f, Arc::clone(&intended))),
        );
        let tracked = cfg.ack.enabled && !intended.is_empty();
        if tracked {
            let acked = intended
                .iter()
                .map(|&r| (r, FragSet::new(frag_count)))
                .collect();
            self.outgoing.insert(
                msg,
                Outgoing {
                    handle,
                    payload,
                    intended,
                    frag_count,
                    frag_payload,
                    msg_wire_bytes,
                    class,
                    acked,
                    attempt: 0,
                    in_flight: frag_count,
                    retr_timer: None,
                },
            );
        }
        SendPlan {
            msg,
            frames,
            tracked,
        }
    }

    /// Handles a received data fragment at node `me`. `payload` is the
    /// whole message payload the frame carries (see [`FrameKind::Data`]).
    #[allow(clippy::too_many_arguments)]
    pub fn on_data_frame(
        &mut self,
        me: NodeId,
        msg: MessageId,
        frag: u32,
        frag_count: u32,
        intended: &Arc<[NodeId]>,
        payload: &Bytes,
        msg_wire_bytes: u32,
        from: NodeId,
        ack_enabled: bool,
        ack_delay: SimDuration,
        now: SimTime,
    ) -> DataPlan {
        let entry = self.incoming.entry(msg).or_insert_with(|| {
            Incoming::Assembling(Box::new(Assembling {
                payload: payload.clone(),
                received: FragSet::new(frag_count),
                frag_count,
                from,
                intended: Arc::clone(intended),
                intended_me: intended.contains(&me),
                msg_wire_bytes,
                ack_timer_pending: false,
                last_activity: now,
            }))
        });

        let mut deliver = None;
        let schedule_ack;
        // (frag_count, intended_me, ack_timer_pending) of a newly
        // completed assembly, to collapse into a tombstone below.
        let mut done: Option<(u32, bool, bool)> = None;
        match entry {
            Incoming::Assembling(asm) => {
                asm.last_activity = now;
                asm.from = from;
                // Retransmissions may narrow the intended list to lagging
                // receivers; remember whether we were *ever* intended so
                // re-acks keep flowing.
                if intended.contains(&me) {
                    asm.intended_me = true;
                }
                if frag < asm.frag_count {
                    asm.received.set(frag);
                    if asm.received.is_complete(asm.frag_count) {
                        deliver = Some(DeliverPlan {
                            from,
                            intended: asm.intended.to_vec(),
                            overheard: !asm.intended_me,
                            wire_bytes: asm.msg_wire_bytes as usize,
                            // Zero-copy: every fragment carried the same
                            // shared message payload; delivery hands it over.
                            payload: asm.payload.clone(),
                        });
                    }
                }
                let complete = asm.received.is_complete(asm.frag_count);
                schedule_ack = if ack_enabled && asm.intended_me && !asm.ack_timer_pending {
                    asm.ack_timer_pending = true;
                    // Complete messages ack promptly (short jitter applied
                    // by the kernel); incomplete ones wait for stragglers.
                    Some(if complete {
                        SimDuration::ZERO
                    } else {
                        ack_delay
                    })
                } else {
                    None
                };
                if complete {
                    done = Some((asm.frag_count, asm.intended_me, asm.ack_timer_pending));
                }
            }
            Incoming::Done {
                intended_me,
                ack_timer_pending,
                last_activity,
                ..
            } => {
                *last_activity = now;
                if intended.contains(&me) {
                    *intended_me = true;
                }
                // Already delivered and reassembled: duplicates never
                // redeliver, and a complete entry always acks promptly.
                schedule_ack = if ack_enabled && *intended_me && !*ack_timer_pending {
                    *ack_timer_pending = true;
                    Some(SimDuration::ZERO)
                } else {
                    None
                };
            }
        }
        if let Some((frag_count, intended_me, ack_timer_pending)) = done {
            // Delivered: collapse the assembly state (payload refcount,
            // bitmap, receiver list) into the tombstone.
            *entry = Incoming::Done {
                frag_count,
                intended_me,
                ack_timer_pending,
                last_activity: now,
            };
        }

        DataPlan {
            deliver,
            schedule_ack,
        }
    }

    /// Builds the ack frame for `msg` when its ack timer fires.
    pub fn make_ack(&mut self, me: NodeId, msg: MessageId) -> Option<Frame> {
        let received = match self.incoming.get_mut(&msg)? {
            Incoming::Assembling(asm) => {
                asm.ack_timer_pending = false;
                asm.received.clone()
            }
            Incoming::Done {
                frag_count,
                ack_timer_pending,
                ..
            } => {
                *ack_timer_pending = false;
                // The tombstone dropped its bitmap at delivery; a delivered
                // message's bitmap is complete by definition, and the wire
                // size depends only on the fragment count.
                FragSet::full(*frag_count)
            }
        };
        let wire = ACK_HEADER_BASE + received.byte_len();
        Some(Frame {
            sender: me,
            wire_bytes: wire,
            class: pds_obs::class::OTHER,
            kind: FrameKind::Ack { msg, received },
        })
    }

    /// Merges an ack from `receiver`; returns the completed message's handle
    /// when every intended receiver has acknowledged every fragment.
    pub fn on_ack_frame(
        &mut self,
        msg: MessageId,
        receiver: NodeId,
        bitmap: &FragSet,
    ) -> Option<(MessageHandle, Option<TimerId>)> {
        let out = self.outgoing.get_mut(&msg)?;
        if let Some(set) = out.acked.get_mut(&receiver) {
            set.merge(bitmap);
        }
        if out.fully_acked() {
            let out = self.outgoing.remove(&msg)?;
            return Some((out.handle, out.retr_timer));
        }
        None
    }

    /// Notes that one frame of `msg` left the radio (or was dropped).
    /// Returns `true` when the current attempt has no frames in flight and a
    /// retransmission timer should be armed.
    pub fn on_frame_done(&mut self, msg: MessageId) -> bool {
        let Some(out) = self.outgoing.get_mut(&msg) else {
            return false;
        };
        out.in_flight = out.in_flight.saturating_sub(1);
        out.in_flight == 0 && out.retr_timer.is_none()
    }

    /// Records the armed retransmission timer for `msg`.
    pub fn set_retr_timer(&mut self, msg: MessageId, id: TimerId) {
        if let Some(out) = self.outgoing.get_mut(&msg) {
            out.retr_timer = Some(id);
        }
    }

    /// Handles a retransmission timeout.
    ///
    /// The retry budget scales with the message's fragment count: the
    /// calibrated `MaxRetrTime` (4) was measured on single-frame messages
    /// (§V-1), while a 256 KB chunk spans ~170 fragments and each attempt
    /// only repairs the missing ones — a fixed 4-attempt budget would
    /// abandon large messages that lose a handful of fragments per attempt
    /// under contention.
    pub fn on_retr_timer(&mut self, me: NodeId, msg: MessageId, max_retr: u32) -> RetrPlan {
        let Some(out) = self.outgoing.get_mut(&msg) else {
            return RetrPlan::Nothing;
        };
        out.retr_timer = None;
        if out.fully_acked() {
            let _ = self.outgoing.remove(&msg);
            return RetrPlan::Nothing;
        }
        let budget = max_retr + out.frag_count / 8;
        if out.attempt >= budget {
            return match self.outgoing.remove(&msg) {
                Some(out) => RetrPlan::GiveUp(out.handle),
                None => RetrPlan::Nothing,
            };
        }
        out.attempt += 1;
        let attempt = out.attempt;
        let missing = out.missing();
        out.in_flight = missing.len() as u32;
        let mut frames = Vec::with_capacity(missing.len());
        build_frames_into(
            &mut frames,
            msg,
            me,
            &out.payload,
            out.frag_payload,
            out.frag_count,
            out.msg_wire_bytes,
            out.class,
            missing.into_iter(),
        );
        self.max_attempt = self.max_attempt.max(attempt);
        RetrPlan::Retransmit(frames)
    }

    /// Highest retransmission attempt this node ever reached.
    pub fn max_attempt(&self) -> u32 {
        self.max_attempt
    }

    /// Whether an outgoing message is still tracked (unacked).
    #[cfg(test)]
    pub fn is_tracking(&self, msg: MessageId) -> bool {
        self.outgoing.contains_key(&msg)
    }

    /// Drops stale incoming state: delivered messages older than
    /// `delivered_horizon`, incomplete ones idle longer than `stale_horizon`.
    pub fn sweep(
        &mut self,
        now: SimTime,
        delivered_horizon: SimDuration,
        stale_horizon: SimDuration,
    ) {
        self.incoming.retain(|_, inc| match inc {
            Incoming::Assembling(asm) => now.since(asm.last_activity) < stale_horizon,
            Incoming::Done { last_activity, .. } => {
                now.since(*last_activity) < delivered_horizon
            }
        });
    }
}

/// Builds data frames for the given (fragment, receivers) pairs into `out`.
///
/// Every frame carries the same shared message [`Bytes`] (a refcount bump)
/// and a shared receiver-list [`Arc`]; the fragment's wire length is
/// computed arithmetically — `min(frag_payload, len - start)`, zero past
/// the end — so fragment slices never materialize and building a frame
/// allocates nothing beyond `out`'s (amortized, recycled) storage.
#[allow(clippy::too_many_arguments)]
fn build_frames_into(
    out: &mut Vec<Frame>,
    msg: MessageId,
    sender: NodeId,
    payload: &Bytes,
    frag_payload: usize,
    frag_count: u32,
    msg_wire_bytes: u32,
    class: u8,
    frags: impl Iterator<Item = (u32, Arc<[NodeId]>)>,
) {
    out.extend(frags.map(|(frag, intended)| {
        let start = frag as usize * frag_payload;
        let part_len = payload.len().saturating_sub(start).min(frag_payload);
        let wire = DATA_HEADER_BASE + PER_RECEIVER_BYTES * intended.len() + part_len;
        Frame {
            sender,
            wire_bytes: wire,
            class,
            kind: FrameKind::Data {
                msg,
                frag,
                frag_count,
                intended,
                payload: payload.clone(),
                msg_wire_bytes,
            },
        }
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    fn cfg() -> SimConfig {
        SimConfig::default()
    }

    fn payload(n: usize) -> Bytes {
        Bytes::from((0..n).map(|i| (i % 251) as u8).collect::<Vec<u8>>())
    }

    fn send(
        t: &mut Transport,
        origin: NodeId,
        seq: u64,
        len: usize,
        intended: Vec<NodeId>,
    ) -> SendPlan {
        t.send_message(
            origin,
            seq,
            MessageHandle(seq),
            payload(len),
            intended,
            pds_obs::class::OTHER,
            &cfg(),
            Vec::new(),
        )
    }

    /// Drives all of `plan`'s frames into receiver transport `rx` at `me`.
    fn receive_all(rx: &mut Transport, me: NodeId, plan: &SendPlan) -> Option<DeliverPlan> {
        let mut delivered = None;
        for f in &plan.frames {
            if let FrameKind::Data {
                msg,
                frag,
                frag_count,
                intended,
                payload,
                msg_wire_bytes,
            } = &f.kind
            {
                let p = rx.on_data_frame(
                    me,
                    *msg,
                    *frag,
                    *frag_count,
                    intended,
                    payload,
                    *msg_wire_bytes,
                    f.sender,
                    true,
                    SimDuration::from_millis(40),
                    SimTime::ZERO,
                );
                if p.deliver.is_some() {
                    delivered = p.deliver;
                }
            }
        }
        delivered
    }

    #[test]
    fn small_message_is_single_fragment() {
        let mut t = Transport::new();
        let plan = send(&mut t, NodeId(0), 0, 100, vec![NodeId(1)]);
        assert_eq!(plan.frames.len(), 1);
        assert!(plan.tracked);
    }

    #[test]
    fn large_message_fragments_and_reassembles() {
        let mut tx = Transport::new();
        let mut rx = Transport::new();
        let plan = send(&mut tx, NodeId(0), 0, 256 * 1024, vec![NodeId(1)]);
        assert!(plan.frames.len() > 100, "256 KB should fragment heavily");
        let d = receive_all(&mut rx, NodeId(1), &plan).expect("complete");
        assert_eq!(d.payload, payload(256 * 1024));
        assert!(!d.overheard);
    }

    #[test]
    fn overhearing_node_reassembles_too() {
        let mut tx = Transport::new();
        let mut rx = Transport::new();
        let plan = send(&mut tx, NodeId(0), 0, 5000, vec![NodeId(1)]);
        let d = receive_all(&mut rx, NodeId(9), &plan).expect("complete");
        assert!(d.overheard);
    }

    #[test]
    fn empty_intended_is_untracked() {
        let mut t = Transport::new();
        let plan = send(&mut t, NodeId(0), 0, 100, vec![]);
        assert!(!plan.tracked);
        assert!(!t.is_tracking(plan.msg));
    }

    #[test]
    fn ack_completes_message() {
        let mut tx = Transport::new();
        let mut rx = Transport::new();
        let plan = send(&mut tx, NodeId(0), 3, 4000, vec![NodeId(1)]);
        receive_all(&mut rx, NodeId(1), &plan);
        let ack = rx.make_ack(NodeId(1), plan.msg).expect("ack frame");
        let FrameKind::Ack { msg, received } = ack.kind else {
            panic!("expected ack")
        };
        let done = tx.on_ack_frame(msg, NodeId(1), &received);
        assert_eq!(done.map(|(h, _)| h), Some(MessageHandle(3)));
        assert!(!tx.is_tracking(plan.msg));
    }

    #[test]
    fn partial_ack_keeps_tracking_and_retransmits_missing() {
        let mut tx = Transport::new();
        let mut rx = Transport::new();
        let plan = send(&mut tx, NodeId(0), 0, 5000, vec![NodeId(1)]);
        assert!(plan.frames.len() >= 4);
        // Deliver all but the last fragment.
        let partial = SendPlan {
            msg: plan.msg,
            frames: plan.frames[..plan.frames.len() - 1].to_vec(),
            tracked: true,
        };
        assert!(receive_all(&mut rx, NodeId(1), &partial).is_none());
        let ack = rx.make_ack(NodeId(1), plan.msg).expect("partial ack");
        let FrameKind::Ack { received, .. } = &ack.kind else {
            panic!()
        };
        assert!(tx.on_ack_frame(plan.msg, NodeId(1), received).is_none());
        // All frames "finish"; the retransmission timer wants arming.
        let mut arm = false;
        for _ in 0..plan.frames.len() {
            arm = tx.on_frame_done(plan.msg);
        }
        assert!(arm);
        match tx.on_retr_timer(NodeId(0), plan.msg, 4) {
            RetrPlan::Retransmit(frames) => {
                assert_eq!(frames.len(), 1, "only the missing fragment");
                let FrameKind::Data { frag, .. } = frames[0].kind else {
                    panic!()
                };
                assert_eq!(frag as usize, plan.frames.len() - 1);
            }
            other => panic!("expected retransmit, got {other:?}"),
        }
    }

    #[test]
    fn gives_up_after_max_retr() {
        let mut tx = Transport::new();
        let plan = send(&mut tx, NodeId(0), 7, 100, vec![NodeId(1)]);
        for attempt in 0..=4u32 {
            for _ in 0..1 {
                tx.on_frame_done(plan.msg);
            }
            match tx.on_retr_timer(NodeId(0), plan.msg, 4) {
                RetrPlan::Retransmit(_) if attempt < 4 => {}
                RetrPlan::GiveUp(h) if attempt == 4 => {
                    assert_eq!(h, MessageHandle(7));
                    return;
                }
                other => panic!("attempt {attempt}: unexpected {other:?}"),
            }
        }
        panic!("never gave up");
    }

    #[test]
    fn retry_budget_scales_with_fragment_count() {
        // A ~40-fragment message gets max_retr + 40/8 = 9 attempts.
        let mut tx = Transport::new();
        let plan = send(&mut tx, NodeId(0), 0, 55_000, vec![NodeId(1)]);
        let frag_count = plan.frames.len() as u32;
        assert!(frag_count >= 30, "needs a multi-fragment message");
        let budget = 4 + frag_count / 8;
        for attempt in 0..=budget {
            for _ in 0..frag_count {
                tx.on_frame_done(plan.msg);
            }
            match tx.on_retr_timer(NodeId(0), plan.msg, 4) {
                RetrPlan::Retransmit(_) if attempt < budget => {}
                RetrPlan::GiveUp(_) if attempt == budget => return,
                other => panic!("attempt {attempt}/{budget}: unexpected {other:?}"),
            }
        }
        panic!("never exhausted the scaled budget");
    }

    #[test]
    fn duplicate_fragments_do_not_redeliver() {
        let mut tx = Transport::new();
        let mut rx = Transport::new();
        let plan = send(&mut tx, NodeId(0), 0, 2000, vec![NodeId(1)]);
        assert!(receive_all(&mut rx, NodeId(1), &plan).is_some());
        assert!(
            receive_all(&mut rx, NodeId(1), &plan).is_none(),
            "second delivery suppressed"
        );
    }

    #[test]
    fn ack_requested_once_until_sent() {
        let mut tx = Transport::new();
        let mut rx = Transport::new();
        let plan = send(&mut tx, NodeId(0), 0, 5000, vec![NodeId(1)]);
        let FrameKind::Data {
            msg,
            frag,
            frag_count,
            intended,
            payload,
            msg_wire_bytes,
        } = plan.frames[0].kind.clone()
        else {
            panic!()
        };
        let p1 = rx.on_data_frame(
            NodeId(1),
            msg,
            frag,
            frag_count,
            &intended,
            &payload,
            msg_wire_bytes,
            NodeId(0),
            true,
            SimDuration::from_millis(40),
            SimTime::ZERO,
        );
        assert!(p1.schedule_ack.is_some());
        let p2 = rx.on_data_frame(
            NodeId(1),
            msg,
            frag,
            frag_count,
            &intended,
            &payload,
            msg_wire_bytes,
            NodeId(0),
            true,
            SimDuration::from_millis(40),
            SimTime::ZERO,
        );
        assert!(p2.schedule_ack.is_none(), "timer already pending");
        assert!(rx.make_ack(NodeId(1), msg).is_some());
    }

    #[test]
    fn overhearing_node_never_acks() {
        let mut tx = Transport::new();
        let mut rx = Transport::new();
        let plan = send(&mut tx, NodeId(0), 0, 100, vec![NodeId(1)]);
        let FrameKind::Data {
            msg,
            frag,
            frag_count,
            intended,
            payload,
            msg_wire_bytes,
        } = plan.frames[0].kind.clone()
        else {
            panic!()
        };
        let p = rx.on_data_frame(
            NodeId(5),
            msg,
            frag,
            frag_count,
            &intended,
            &payload,
            msg_wire_bytes,
            NodeId(0),
            true,
            SimDuration::from_millis(40),
            SimTime::ZERO,
        );
        assert!(p.schedule_ack.is_none());
        assert!(p.deliver.expect("delivered").overheard);
    }

    #[test]
    fn sweep_drops_stale_state() {
        let mut tx = Transport::new();
        let mut rx = Transport::new();
        let plan = send(&mut tx, NodeId(0), 0, 100, vec![NodeId(1)]);
        receive_all(&mut rx, NodeId(1), &plan);
        assert_eq!(rx.incoming.len(), 1);
        rx.sweep(
            SimTime::from_secs_f64(120.0),
            SimDuration::from_secs(60),
            SimDuration::from_secs(30),
        );
        assert!(rx.incoming.is_empty());
    }

    #[test]
    fn frag_payload_accounts_for_receivers() {
        let c = cfg();
        let none = Transport::frag_payload_size(&c, 0);
        let ten = Transport::frag_payload_size(&c, 10);
        assert_eq!(none - ten, 40);
    }

    #[test]
    fn wire_bytes_include_headers() {
        let mut t = Transport::new();
        let plan = send(&mut t, NodeId(0), 0, 100, vec![NodeId(1), NodeId(2)]);
        let f = &plan.frames[0];
        assert_eq!(
            f.wire_bytes,
            DATA_HEADER_BASE + 2 * PER_RECEIVER_BYTES + 100
        );
    }
}
