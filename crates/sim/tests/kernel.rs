//! Public-API integration tests of the simulation kernel: ordering,
//! reliability at size, broadcast fan-out, timer semantics, determinism,
//! pacing regimes and energy accounting.

use bytes::Bytes;
use pds_sim::{
    AckConfig, Application, Context, EnergyModel, MessageMeta, NodeId, Position, SenderMode,
    SimConfig, SimDuration, SimTime, World,
};

struct Sink {
    payloads: Vec<Vec<u8>>,
}
impl Sink {
    fn new() -> Self {
        Self {
            payloads: Vec::new(),
        }
    }
}
impl Application for Sink {
    fn on_start(&mut self, _ctx: &mut Context) {}
    fn on_message(&mut self, _ctx: &mut Context, _meta: MessageMeta, payload: Bytes) {
        self.payloads.push(payload.to_vec());
    }
}

struct SendList {
    messages: Vec<(Vec<u8>, Vec<NodeId>)>,
}
impl Application for SendList {
    fn on_start(&mut self, ctx: &mut Context) {
        for (payload, intended) in self.messages.drain(..) {
            ctx.broadcast(Bytes::from(payload), &intended);
        }
    }
    fn on_message(&mut self, _ctx: &mut Context, _meta: MessageMeta, _payload: Bytes) {}
}

fn lossless() -> SimConfig {
    let mut c = SimConfig::default();
    c.radio.baseline_loss = 0.0;
    c
}

#[test]
fn messages_arrive_in_send_order_on_a_clean_link() {
    // Acks off: reverse traffic can block the half-duplex receiver and
    // reorder deliveries via retransmission, which is correct but not FIFO.
    let mut c = lossless();
    c.ack = AckConfig::disabled();
    let mut w = World::new(c, 1);
    let msgs: Vec<(Vec<u8>, Vec<NodeId>)> =
        (0..50u8).map(|i| (vec![i; 100], vec![NodeId(1)])).collect();
    w.add_node(
        Position::new(0.0, 0.0),
        Box::new(SendList { messages: msgs }),
    );
    let rx = w.add_node(Position::new(30.0, 0.0), Box::new(Sink::new()));
    w.run_until(SimTime::from_secs_f64(5.0));
    let sink = w.app::<Sink>(rx).expect("alive");
    assert_eq!(sink.payloads.len(), 50);
    for (i, p) in sink.payloads.iter().enumerate() {
        assert_eq!(p[0] as usize, i, "FIFO order preserved");
    }
}

#[test]
fn megabyte_message_survives_loss() {
    let mut c = SimConfig::default();
    c.radio.baseline_loss = 0.1;
    let mut w = World::new(c, 2);
    let body: Vec<u8> = (0..1_000_000u32).map(|i| (i % 251) as u8).collect();
    w.add_node(
        Position::new(0.0, 0.0),
        Box::new(SendList {
            messages: vec![(body.clone(), vec![NodeId(1)])],
        }),
    );
    let rx = w.add_node(Position::new(30.0, 0.0), Box::new(Sink::new()));
    w.run_until(SimTime::from_secs_f64(30.0));
    let sink = w.app::<Sink>(rx).expect("alive");
    assert_eq!(sink.payloads.len(), 1, "whole megabyte reassembled");
    assert_eq!(sink.payloads[0], body, "content intact");
}

#[test]
fn broadcast_reaches_every_neighbor_in_range() {
    let mut w = World::new(lossless(), 3);
    w.add_node(
        Position::new(0.0, 0.0),
        Box::new(SendList {
            messages: vec![(vec![7; 64], vec![])],
        }),
    );
    let mut receivers = Vec::new();
    for k in 0..6 {
        let angle = f64::from(k) / 6.0 * std::f64::consts::TAU;
        receivers.push(w.add_node(
            Position::new(40.0 * angle.cos(), 40.0 * angle.sin()),
            Box::new(Sink::new()),
        ));
    }
    let far = w.add_node(Position::new(300.0, 0.0), Box::new(Sink::new()));
    w.run_until(SimTime::from_secs_f64(2.0));
    for r in receivers {
        assert_eq!(w.app::<Sink>(r).expect("alive").payloads.len(), 1);
    }
    assert!(w.app::<Sink>(far).expect("alive").payloads.is_empty());
}

#[test]
fn many_concurrent_reliable_messages_all_resolve() {
    struct Flood {
        outcomes: Vec<bool>,
    }
    impl Application for Flood {
        fn on_start(&mut self, ctx: &mut Context) {
            for i in 0..200u32 {
                ctx.broadcast(Bytes::from(vec![(i % 256) as u8; 900]), &[NodeId(1)]);
            }
        }
        fn on_message(&mut self, _: &mut Context, _: MessageMeta, _: Bytes) {}
        fn on_send_result(
            &mut self,
            _ctx: &mut Context,
            _m: pds_sim::MessageHandle,
            delivered: bool,
        ) {
            self.outcomes.push(delivered);
        }
    }
    let mut c = SimConfig::default();
    c.radio.baseline_loss = 0.05;
    let mut w = World::new(c, 4);
    let tx = w.add_node(
        Position::new(0.0, 0.0),
        Box::new(Flood {
            outcomes: Vec::new(),
        }),
    );
    w.add_node(Position::new(30.0, 0.0), Box::new(Sink::new()));
    w.run_until(SimTime::from_secs_f64(20.0));
    let flood = w.app::<Flood>(tx).expect("alive");
    assert_eq!(flood.outcomes.len(), 200, "every message gets a verdict");
    let delivered = flood.outcomes.iter().filter(|&&d| d).count();
    assert!(delivered >= 198, "nearly all delivered ({delivered}/200)");
}

#[test]
fn timer_tags_fire_in_scheduled_order() {
    struct Timers {
        fired: Vec<u64>,
    }
    impl Application for Timers {
        fn on_start(&mut self, ctx: &mut Context) {
            // Schedule out of order; they must fire by time.
            ctx.set_timer(SimDuration::from_millis(30), 3);
            ctx.set_timer(SimDuration::from_millis(10), 1);
            ctx.set_timer(SimDuration::from_millis(20), 2);
            ctx.set_timer(SimDuration::from_millis(10), 11); // tie: insertion order
        }
        fn on_message(&mut self, _: &mut Context, _: MessageMeta, _: Bytes) {}
        fn on_timer(&mut self, _ctx: &mut Context, tag: u64) {
            self.fired.push(tag);
        }
    }
    let mut w = World::new(lossless(), 5);
    let n = w.add_node(Position::new(0.0, 0.0), Box::new(Timers { fired: vec![] }));
    w.run_until(SimTime::from_secs_f64(1.0));
    assert_eq!(w.app::<Timers>(n).expect("alive").fired, vec![1, 11, 2, 3]);
}

#[test]
fn full_runs_are_deterministic_per_seed() {
    let run = |seed: u64| -> (u64, u64, u64) {
        let mut c = SimConfig::default();
        c.radio.baseline_loss = 0.08;
        let mut w = World::new(c, seed);
        for i in 0..8 {
            let pos = Position::new(f64::from(i % 3) * 45.0, f64::from(i / 3) * 45.0);
            let msgs = (0..10u8).map(|k| (vec![k; 700], vec![])).collect();
            w.add_node(pos, Box::new(SendList { messages: msgs }));
        }
        w.run_until(SimTime::from_secs_f64(10.0));
        let s = w.stats();
        (s.frames_sent, s.frames_delivered, s.frames_collided)
    };
    assert_eq!(run(9), run(9));
    assert_ne!(run(9), run(10));
}

#[test]
fn prototype_regime_drops_raw_bursts_but_not_paced_ones() {
    let burst: Vec<(Vec<u8>, Vec<NodeId>)> =
        (0..2_000u32).map(|_| (vec![1; 1_400], vec![])).collect();
    // Raw UDP: ~2.8 MB burst into a 1 MB buffer → drops.
    let mut raw_cfg = SimConfig::prototype();
    raw_cfg.sender = SenderMode::RawUdp;
    raw_cfg.ack = AckConfig::disabled();
    raw_cfg.radio.baseline_loss = 0.0;
    let mut w = World::new(raw_cfg, 6);
    w.add_node(
        Position::new(0.0, 0.0),
        Box::new(SendList {
            messages: burst.clone(),
        }),
    );
    let rx = w.add_node(Position::new(30.0, 0.0), Box::new(Sink::new()));
    w.run_until(SimTime::from_secs_f64(60.0));
    let raw_got = w.app::<Sink>(rx).expect("alive").payloads.len();
    assert!(
        w.stats().frames_dropped_os > 0,
        "raw bursts overflow the OS buffer"
    );
    assert!(
        raw_got < 1_500,
        "raw reception capped by overflow ({raw_got}/2000)"
    );

    // Paced at the calibrated 4.5 Mbps < 5 Mbps service rate: no drops.
    let mut paced_cfg = SimConfig::prototype();
    paced_cfg.ack = AckConfig::disabled();
    paced_cfg.radio.baseline_loss = 0.0;
    let mut w = World::new(paced_cfg, 6);
    w.add_node(
        Position::new(0.0, 0.0),
        Box::new(SendList { messages: burst }),
    );
    let rx = w.add_node(Position::new(30.0, 0.0), Box::new(Sink::new()));
    w.run_until(SimTime::from_secs_f64(60.0));
    assert_eq!(w.stats().frames_dropped_os, 0, "pacing prevents overflow");
    let paced_got = w.app::<Sink>(rx).expect("alive").payloads.len();
    assert!(
        paced_got > 1_900,
        "paced reception near-complete ({paced_got}/2000)"
    );
}

#[test]
fn backpressure_holds_excess_in_the_bucket() {
    // Multi-hop regime: leak rate below MAC rate, but a huge burst — the
    // bucket queues what the OS buffer cannot take, and nothing is lost.
    let mut c = lossless();
    c.radio.os_buffer_bytes = 100_000; // deliberately tiny OS buffer
    let mut w = World::new(c, 7);
    let burst: Vec<(Vec<u8>, Vec<NodeId>)> =
        (0..500u32).map(|_| (vec![2; 1_400], vec![])).collect();
    let tx = w.add_node(
        Position::new(0.0, 0.0),
        Box::new(SendList { messages: burst }),
    );
    let rx = w.add_node(Position::new(30.0, 0.0), Box::new(Sink::new()));
    w.run_until(SimTime::from_secs_f64(0.05));
    let (bucket, os) = w.queue_depths(tx).expect("alive");
    assert!(os <= 100_000, "OS buffer never exceeds its capacity");
    assert!(bucket > 0, "excess waits in the app-level bucket");
    w.run_until(SimTime::from_secs_f64(30.0));
    assert_eq!(w.stats().frames_dropped_os, 0);
    assert_eq!(w.app::<Sink>(rx).expect("alive").payloads.len(), 500);
}

#[test]
fn energy_accounts_both_directions() {
    let mut w = World::new(lossless(), 8);
    let tx = w.add_node(
        Position::new(0.0, 0.0),
        Box::new(SendList {
            messages: vec![(vec![0; 50_000], vec![NodeId(1)])],
        }),
    );
    let rx = w.add_node(Position::new(30.0, 0.0), Box::new(Sink::new()));
    w.run_until(SimTime::from_secs_f64(5.0));
    let model = EnergyModel::default();
    let tx_stats = w.node_stats(tx).expect("alive");
    let rx_stats = w.node_stats(rx).expect("alive");
    assert!(tx_stats.bytes_sent >= 50_000);
    assert!(rx_stats.bytes_received >= 50_000);
    let idle_only = model.node_energy_j(&pds_sim::NodeStats::default(), 5.0);
    assert!(model.node_energy_j(&tx_stats, 5.0) > idle_only);
    assert!(model.node_energy_j(&rx_stats, 5.0) > idle_only);
    assert!(w.energy_j(&model) > 2.0 * idle_only);
}

#[test]
fn moving_node_hands_over_between_senders() {
    // A walker passes two periodic beacons; it hears the near one first,
    // both in the middle, the far one at the end.
    struct Beacon(u8);
    impl Application for Beacon {
        fn on_start(&mut self, ctx: &mut Context) {
            ctx.set_timer(SimDuration::from_millis(100), 0);
        }
        fn on_message(&mut self, _: &mut Context, _: MessageMeta, _: Bytes) {}
        fn on_timer(&mut self, ctx: &mut Context, _tag: u64) {
            ctx.broadcast(Bytes::from(vec![self.0; 16]), &[]);
            ctx.set_timer(SimDuration::from_millis(100), 0);
        }
    }
    let mut w = World::new(lossless(), 9);
    w.add_node(Position::new(0.0, 0.0), Box::new(Beacon(1)));
    w.add_node(Position::new(300.0, 0.0), Box::new(Beacon(2)));
    let walker = w.add_node(Position::new(0.0, 20.0), Box::new(Sink::new()));
    w.move_node(walker, Position::new(300.0, 20.0), 10.0); // 30 s walk
    w.run_until(SimTime::from_secs_f64(30.0));
    let heard = &w.app::<Sink>(walker).expect("alive").payloads;
    assert!(heard.iter().any(|p| p[0] == 1), "heard the first beacon");
    assert!(heard.iter().any(|p| p[0] == 2), "heard the second beacon");
    let first_b2 = heard.iter().position(|p| p[0] == 2).expect("b2 heard");
    assert!(
        heard[..first_b2].iter().all(|p| p[0] == 1),
        "beacon 2 only audible after walking toward it"
    );
}
