//! The replay-digest gate (DESIGN.md §8): one scenario, run twice under
//! each spatial index implementation, must produce four identical event
//! stream digests. Run with `cargo test -p pds-sim --features replay-digest`.
#![cfg(feature = "replay-digest")]

use bytes::Bytes;
use pds_sim::{
    Application, Context, FaultPlan, MessageMeta, NodeId, PartitionWindow, Position, Scheduler,
    SilenceWindow, SimConfig, SimDuration, SimTime, SpatialIndex, Stats, World,
};

/// The digest of the standard scenario below, captured before the DST fault
/// hook existed. The fault layer's zero-cost contract: a build that carries
/// the hook but installs no plan must still produce exactly this stream.
/// Any intentional kernel event-stream change must update this constant
/// (and say so in the commit).
const PINNED_FAULTLESS_DIGEST: u64 = 0xb231_38e1_74af_7c23;

/// Counts everything it hears.
struct Sink {
    received: usize,
}

impl Application for Sink {
    fn on_start(&mut self, _ctx: &mut Context) {}
    fn on_message(&mut self, _ctx: &mut Context, _meta: MessageMeta, _payload: Bytes) {
        self.received += 1;
    }
}

/// Broadcasts `count` messages of `size` bytes, one per 50 ms tick.
struct Blaster {
    count: u32,
    size: usize,
    intended: Vec<NodeId>,
}

impl Application for Blaster {
    fn on_start(&mut self, ctx: &mut Context) {
        ctx.set_timer(SimDuration::from_millis(50), 0);
    }
    fn on_message(&mut self, _ctx: &mut Context, _meta: MessageMeta, _payload: Bytes) {}
    fn on_timer(&mut self, ctx: &mut Context, _tag: u64) {
        if self.count == 0 {
            return;
        }
        self.count -= 1;
        ctx.broadcast(Bytes::from(vec![0u8; self.size]), &self.intended);
        ctx.set_timer(SimDuration::from_millis(50), 0);
    }
}

/// A lossy, mobile, churning scenario exercising every event kind: app
/// timers, MAC attempts and defers, transmissions, bucket drains, control
/// closures and sweeps.
fn run(index: SpatialIndex, rebucket_ms: u64, seed: u64) -> (u64, u64) {
    run_full(index, Scheduler::default(), rebucket_ms, seed, false)
}

fn run_traced(index: SpatialIndex, rebucket_ms: u64, seed: u64, traced: bool) -> (u64, u64) {
    run_full(index, Scheduler::default(), rebucket_ms, seed, traced)
}

/// With `PDS_TRACE_DIR` set, a JSONL sink writing one uniquely named trace
/// file per run into that directory; `None` otherwise.
fn jsonl_sink_from_env(
    index: SpatialIndex,
    rebucket_ms: u64,
    seed: u64,
) -> Option<Box<dyn pds_sim::TraceSink>> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static RUN: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::var_os("PDS_TRACE_DIR")?;
    let run = RUN.fetch_add(1, Ordering::Relaxed);
    let path = std::path::Path::new(&dir).join(format!(
        "replay-{index:?}-rebucket{rebucket_ms}-seed{seed}-run{run}.jsonl"
    ));
    match pds_sim::obs::JsonlSink::create(&path) {
        Ok(sink) => Some(Box::new(sink)),
        Err(e) => {
            eprintln!("PDS_TRACE_DIR: cannot create {}: {e}", path.display());
            None
        }
    }
}

fn run_full(
    index: SpatialIndex,
    scheduler: Scheduler,
    rebucket_ms: u64,
    seed: u64,
    traced: bool,
) -> (u64, u64) {
    let (digest, stats) = run_plan(index, scheduler, rebucket_ms, seed, traced, None);
    (digest, stats.frames_delivered)
}

fn run_plan(
    index: SpatialIndex,
    scheduler: Scheduler,
    rebucket_ms: u64,
    seed: u64,
    traced: bool,
    plan: Option<FaultPlan>,
) -> (u64, Stats) {
    let sink: Option<Box<dyn pds_sim::TraceSink>> = if traced {
        Some(Box::new(pds_sim::obs::RingSink::new(0)))
    } else {
        // CI failure forensics: PDS_TRACE_DIR=<dir> dumps every run's full
        // event stream as JSONL so `pds-obs diff` can explain a digest
        // mismatch offline.
        jsonl_sink_from_env(index, rebucket_ms, seed)
    };
    let (digest, stats, _) = run_sinked(
        index,
        scheduler,
        rebucket_ms,
        seed,
        sink,
        plan,
        shards_from_env(),
    );
    (digest, stats)
}

/// Default shard count for the standard-scenario helpers: `PDS_SIM_SHARDS`
/// if set, else 1 (the sequential path). The CI shard legs export 4, so
/// every digest assertion in this file — the pins included — doubles as a
/// shards=4 vs shards=1 gate, exactly like the grid/brute and wheel/heap
/// matrix legs.
fn shards_from_env() -> u32 {
    std::env::var("PDS_SIM_SHARDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

#[allow(clippy::too_many_arguments)]
fn run_sinked(
    index: SpatialIndex,
    scheduler: Scheduler,
    rebucket_ms: u64,
    seed: u64,
    sink: Option<Box<dyn pds_sim::TraceSink>>,
    plan: Option<FaultPlan>,
    shards: u32,
) -> (u64, Stats, Option<Box<dyn pds_sim::TraceSink>>) {
    let mut c = SimConfig::default();
    c.radio.baseline_loss = 0.1;
    c.spatial.index = index;
    c.scheduler = scheduler;
    c.spatial.rebucket_interval = SimDuration::from_millis(rebucket_ms);
    c.shards = shards;
    let mut w = World::new(c, seed);
    if let Some(plan) = plan {
        w.install_faults(plan);
    }
    if let Some(sink) = sink {
        w.set_trace_sink(sink);
    }
    w.add_node(
        Position::new(0.0, 0.0),
        Box::new(Blaster {
            count: 40,
            size: 1200,
            intended: vec![NodeId(1)],
        }),
    );
    let b = w.add_node(Position::new(30.0, 0.0), Box::new(Sink { received: 0 }));
    w.add_node(
        Position::new(60.0, 30.0),
        Box::new(Blaster {
            count: 40,
            size: 900,
            intended: vec![],
        }),
    );
    let far = w.add_node(Position::new(400.0, 0.0), Box::new(Sink { received: 0 }));
    // A walker crossing the chatter, plus churn mid-run.
    w.move_node(far, Position::new(0.0, 0.0), 40.0);
    w.schedule(SimTime::from_secs_f64(2.0), move |w| w.remove_node(b));
    w.schedule(SimTime::from_secs_f64(3.0), |w| {
        w.add_node(Position::new(20.0, 20.0), Box::new(Sink { received: 0 }));
    });
    w.run_until(SimTime::from_secs_f64(8.0));
    let sink = w.take_trace_sink();
    (w.replay_digest(), w.stats().clone(), sink)
}

/// A plan exercising every wire-level fault class against the standard
/// scenario: extra drops, duplicated and delayed (reordered) deliveries, a
/// healing partition and a byzantine-silent window.
fn adversarial_plan(seed: u64) -> FaultPlan {
    let mut p = FaultPlan::none(seed);
    p.drop_prob = 0.05;
    p.dup_prob = 0.04;
    p.delay_prob = 0.04;
    p.delay_max = SimDuration::from_millis(80);
    p.partitions.push(PartitionWindow {
        from: SimTime::from_secs_f64(2.5),
        until: SimTime::from_secs_f64(4.0),
        boundary: 2,
    });
    p.silences.push(SilenceWindow {
        node: 2,
        from: SimTime::from_secs_f64(5.0),
        until: SimTime::from_secs_f64(6.0),
    });
    p
}

#[test]
fn replay_digest_is_stable_across_runs_and_spatial_indices() {
    let (brute, delivered) = run(SpatialIndex::BruteForce, 0, 42);
    assert!(delivered > 0, "scenario must actually exchange traffic");
    // All four digests — two runs per index, including one with lazy
    // re-bucketing — must agree bit-for-bit.
    assert_eq!(run(SpatialIndex::BruteForce, 0, 42).0, brute);
    assert_eq!(run(SpatialIndex::Grid, 0, 42).0, brute);
    assert_eq!(run(SpatialIndex::Grid, 500, 42).0, brute);
}

#[test]
fn replay_digest_unchanged_by_tracing() {
    // Installing a trace sink is observation, not simulation: the dispatched
    // event stream (and therefore the digest) must be bit-identical with
    // tracing on and off.
    let (off, delivered) = run_traced(SpatialIndex::Grid, 0, 42, false);
    let (on, delivered_on) = run_traced(SpatialIndex::Grid, 0, 42, true);
    assert!(delivered > 0, "scenario must actually exchange traffic");
    assert_eq!(on, off, "trace sink must not perturb the event stream");
    assert_eq!(delivered_on, delivered);
}

#[test]
fn replay_digest_unchanged_by_flight_recorder() {
    // The always-on black box is observation too: a bounded
    // `FlightRecorder` (small rings, steady-state overwrites in play)
    // must leave the dispatched stream bit-identical — same digest pin,
    // same stats — as no sink at all.
    let (off, off_stats, _) = run_sinked(
        SpatialIndex::Grid,
        Scheduler::default(),
        0,
        42,
        None,
        None,
        shards_from_env(),
    );
    let (on, on_stats, sink) = run_sinked(
        SpatialIndex::Grid,
        Scheduler::default(),
        0,
        42,
        Some(Box::new(pds_sim::obs::FlightRecorder::new(256))),
        None,
        shards_from_env(),
    );
    assert_eq!(on, off, "flight recorder must not perturb the event stream");
    assert_eq!(on_stats, off_stats);
    assert_eq!(on, PINNED_FAULTLESS_DIGEST);
    let sink = sink.expect("recorder still installed");
    let recorder = sink
        .as_any()
        .downcast_ref::<pds_sim::obs::FlightRecorder>()
        .expect("flight recorder");
    assert!(recorder.recorded() > 0, "black box recorded nothing");
    // When CI is capturing digest forensics, park the flight dump next to
    // the JSONL traces so the black box rides the same artifact.
    if let Some(dir) = std::env::var_os("PDS_TRACE_DIR") {
        let path = std::path::Path::new(&dir).join("flight-grid-seed42.trace.jsonl");
        recorder.dump_to_file(&path).expect("write flight dump");
    }
}

#[test]
fn replay_digest_is_identical_across_schedulers() {
    // The timer-wheel/heap differential gate (DESIGN.md §11), mirroring
    // the grid/brute-force one above: the scheduler implementation is a
    // performance choice, so the dispatched event stream — and with it
    // the digest and the delivery count — must be bit-identical, for both
    // spatial indices and with lazy re-bucketing in play.
    let (wheel, delivered) = run_full(SpatialIndex::Grid, Scheduler::Wheel, 0, 42, false);
    assert!(delivered > 0, "scenario must actually exchange traffic");
    let (heap, heap_delivered) = run_full(SpatialIndex::Grid, Scheduler::BinaryHeap, 0, 42, false);
    assert_eq!(wheel, heap, "wheel and heap replay streams diverged");
    assert_eq!(delivered, heap_delivered);
    assert_eq!(
        run_full(SpatialIndex::BruteForce, Scheduler::Wheel, 500, 42, false),
        run_full(
            SpatialIndex::BruteForce,
            Scheduler::BinaryHeap,
            500,
            42,
            false
        ),
    );
}

#[test]
fn replay_digest_distinguishes_seeds() {
    assert_ne!(
        run(SpatialIndex::Grid, 0, 42).0,
        run(SpatialIndex::Grid, 0, 43).0,
        "different seeds must yield different event streams"
    );
}

#[test]
fn faultless_digest_matches_pre_fault_hook_pin() {
    // The acceptance bar for the DST layer: merely *carrying* the fault
    // hook must not move a single bit of the faultless event stream.
    assert_eq!(
        run(SpatialIndex::Grid, 0, 42).0,
        PINNED_FAULTLESS_DIGEST,
        "faultless stream drifted from the pre-fault-hook capture"
    );
}

#[test]
fn noop_fault_plan_is_invisible() {
    // Installing a plan that injects nothing must be indistinguishable —
    // digest and every counter — from installing no plan, because the
    // fault rng is plan-owned and zero-probability rolls consume nothing.
    let (bare, bare_stats) = run_plan(SpatialIndex::Grid, Scheduler::Wheel, 0, 42, false, None);
    let (noop, noop_stats) = run_plan(
        SpatialIndex::Grid,
        Scheduler::Wheel,
        0,
        42,
        false,
        Some(FaultPlan::none(999)),
    );
    assert_eq!(noop, bare, "no-op plan perturbed the event stream");
    assert_eq!(noop_stats, bare_stats);
    assert_eq!(bare, PINNED_FAULTLESS_DIGEST);
}

#[test]
fn faulted_digest_is_stable_across_runs_schedulers_and_indices() {
    // A (seed, plan) pair is a complete replay token: the adversarial
    // stream must be bit-identical across reruns, scheduler backends and
    // spatial indexes, exactly like the faultless one.
    let (first, stats) = run_plan(
        SpatialIndex::Grid,
        Scheduler::Wheel,
        0,
        42,
        false,
        Some(adversarial_plan(7)),
    );
    assert!(
        stats.frames_fault_cut > 0
            && stats.frames_fault_dropped > 0
            && stats.frames_fault_delayed > 0
            && stats.frames_fault_duplicated > 0,
        "plan must actually bite: {stats:?}"
    );
    assert_ne!(
        first, PINNED_FAULTLESS_DIGEST,
        "faults must perturb the stream"
    );
    for (index, scheduler, rebucket) in [
        (SpatialIndex::Grid, Scheduler::Wheel, 0),
        (SpatialIndex::Grid, Scheduler::BinaryHeap, 0),
        (SpatialIndex::BruteForce, Scheduler::Wheel, 0),
        (SpatialIndex::BruteForce, Scheduler::BinaryHeap, 500),
    ] {
        let (digest, rerun_stats) = run_plan(
            index,
            scheduler,
            rebucket,
            42,
            false,
            Some(adversarial_plan(7)),
        );
        assert_eq!(digest, first, "{index:?}/{scheduler:?} diverged");
        assert_eq!(rerun_stats, stats);
    }
}

/// The standard scenario at an explicit shard count, no sink.
fn run_sharded(
    index: SpatialIndex,
    scheduler: Scheduler,
    shards: u32,
    plan: Option<FaultPlan>,
) -> (u64, Stats) {
    let (digest, stats, _) = run_sinked(index, scheduler, 0, 42, None, plan, shards);
    (digest, stats)
}

#[test]
fn sharded_replay_digest_matches_sequential() {
    // The shard gate (DESIGN.md §15), mirroring grid/brute and wheel/heap:
    // the shard count is a performance choice, so the dispatched event
    // stream — digest and every counter — must be bit-identical for any
    // count, under both spatial indexes and both schedulers.
    let (seq, seq_stats) = run_sharded(SpatialIndex::Grid, Scheduler::Wheel, 1, None);
    assert!(
        seq_stats.frames_delivered > 0,
        "scenario must exchange traffic"
    );
    for shards in [2u32, 4, 8] {
        let (digest, stats) = run_sharded(SpatialIndex::Grid, Scheduler::Wheel, shards, None);
        assert_eq!(digest, seq, "shards={shards} diverged from sequential");
        assert_eq!(stats, seq_stats);
    }
    let (heap_seq, heap_stats) = run_sharded(SpatialIndex::Grid, Scheduler::BinaryHeap, 1, None);
    let (heap_4, heap_4_stats) = run_sharded(SpatialIndex::Grid, Scheduler::BinaryHeap, 4, None);
    assert_eq!(
        heap_4, heap_seq,
        "shards=4 diverged under the heap scheduler"
    );
    assert_eq!(heap_4_stats, heap_stats);
    let (brute_seq, brute_stats) = run_sharded(SpatialIndex::BruteForce, Scheduler::Wheel, 1, None);
    let (brute_4, brute_4_stats) = run_sharded(SpatialIndex::BruteForce, Scheduler::Wheel, 4, None);
    assert_eq!(brute_4, brute_seq, "shards=4 diverged in brute-force mode");
    assert_eq!(brute_4_stats, brute_stats);
}

#[test]
fn sharded_adversarial_digest_matches_sequential() {
    // Fault schedules consume only the plan-owned rng on the sequential
    // commit path, so an adversarial run must also be shard-invariant.
    let (seq, seq_stats) = run_sharded(
        SpatialIndex::Grid,
        Scheduler::Wheel,
        1,
        Some(adversarial_plan(7)),
    );
    assert!(seq_stats.frames_fault_dropped > 0, "plan must bite");
    for shards in [2u32, 4] {
        let (digest, stats) = run_sharded(
            SpatialIndex::Grid,
            Scheduler::Wheel,
            shards,
            Some(adversarial_plan(7)),
        );
        assert_eq!(digest, seq, "faulted shards={shards} diverged");
        assert_eq!(stats, seq_stats);
    }
}

#[test]
fn sharded_faultless_digest_matches_pin() {
    // The zero-entropy-reorder bar for sharding: a shards=4 world must
    // consume the kernel rng stream in exactly the same order as shards=1,
    // reproducing the pre-fault-hook digest pin bit for bit.
    let (digest, _) = run_sharded(SpatialIndex::Grid, Scheduler::Wheel, 4, None);
    assert_eq!(
        digest, PINNED_FAULTLESS_DIGEST,
        "sharded stream drifted from the sequential pin"
    );
}

#[test]
fn isolated_shards_consume_rng_in_sequential_order() {
    // Two clusters so far apart that no frame, carrier-sense probe or
    // interference term ever crosses between them: zero cross-shard
    // traffic. Even then the per-receiver loss rolls must interleave in
    // global ascending order, not per-shard order — pinned by digest and
    // stats equality against the sequential run.
    fn run(shards: u32) -> (u64, Stats) {
        let mut c = SimConfig::default();
        c.radio.baseline_loss = 0.1;
        c.shards = shards;
        let mut w = World::new(c, 9);
        for x in [0.0, 10_000.0] {
            w.add_node(
                Position::new(x, 0.0),
                Box::new(Blaster {
                    count: 30,
                    size: 1000,
                    intended: vec![],
                }),
            );
            w.add_node(Position::new(x + 30.0, 0.0), Box::new(Sink { received: 0 }));
        }
        w.run_until(SimTime::from_secs_f64(4.0));
        (w.replay_digest(), w.stats().clone())
    }
    let (seq, seq_stats) = run(1);
    assert!(seq_stats.frames_delivered > 0);
    for shards in [2u32, 4] {
        assert_eq!(run(shards), (seq, seq_stats.clone()), "shards={shards}");
    }
}

#[test]
fn fault_plans_with_different_seeds_diverge() {
    let (a, _) = run_plan(
        SpatialIndex::Grid,
        Scheduler::Wheel,
        0,
        42,
        false,
        Some(adversarial_plan(7)),
    );
    let (b, _) = run_plan(
        SpatialIndex::Grid,
        Scheduler::Wheel,
        0,
        42,
        false,
        Some(adversarial_plan(8)),
    );
    assert_ne!(a, b, "plan seed must feed the fault rolls");
}
