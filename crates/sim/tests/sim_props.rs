//! Property-based tests of the kernel's public API: time arithmetic, RNG
//! statistics, geometric symmetry and crash-freedom of arbitrary small
//! worlds.

use bytes::Bytes;
use pds_sim::{
    Application, Context, MessageMeta, Position, SimConfig, SimDuration, SimRng, SimTime, World,
};
use proptest::prelude::*;

struct Chatter {
    period_ms: u64,
    size: usize,
}
impl Application for Chatter {
    fn on_start(&mut self, ctx: &mut Context) {
        ctx.set_timer(SimDuration::from_millis(self.period_ms), 0);
    }
    fn on_message(&mut self, _: &mut Context, _: MessageMeta, _: Bytes) {}
    fn on_timer(&mut self, ctx: &mut Context, _tag: u64) {
        ctx.broadcast(Bytes::from(vec![0u8; self.size]), &[]);
        ctx.set_timer(SimDuration::from_millis(self.period_ms), 0);
    }
}

proptest! {
    #[test]
    fn time_addition_is_associative_and_monotone(
        a in 0u64..1_000_000_000,
        b in 0u64..1_000_000,
        c in 0u64..1_000_000,
    ) {
        let t = SimTime::from_micros(a);
        let d1 = SimDuration::from_micros(b);
        let d2 = SimDuration::from_micros(c);
        prop_assert_eq!((t + d1) + d2, t + (d1 + d2));
        prop_assert!(t + d1 >= t);
        prop_assert_eq!((t + d1).since(t), d1);
    }

    #[test]
    fn duration_seconds_roundtrip(us in 0u64..10_000_000_000) {
        let d = SimDuration::from_micros(us);
        let back = SimDuration::from_secs_f64(d.as_secs_f64());
        // f64 has 53 bits of mantissa; microsecond counts this small are exact.
        prop_assert_eq!(back, d);
    }

    #[test]
    fn rng_bounds_hold(seed in any::<u64>(), lo in 0u64..100, span in 1u64..1000) {
        let mut r = SimRng::new(seed);
        for _ in 0..64 {
            let x = r.range_u64(lo, lo + span);
            prop_assert!((lo..lo + span).contains(&x));
            let f = r.next_f64();
            prop_assert!((0.0..1.0).contains(&f));
            prop_assert!(r.exponential(1.5) >= 0.0);
        }
    }

    #[test]
    fn neighbor_relation_is_symmetric(
        coords in proptest::collection::vec((0.0f64..500.0, 0.0f64..500.0), 2..8),
    ) {
        let mut w = World::new(SimConfig::default(), 1);
        let ids: Vec<_> = coords
            .iter()
            .map(|&(x, y)| {
                w.add_node(Position::new(x, y), Box::new(Chatter { period_ms: 100, size: 10 }))
            })
            .collect();
        for &a in &ids {
            for &b in &ids {
                if a == b {
                    continue;
                }
                let ab = w.neighbors(a).contains(&b);
                let ba = w.neighbors(b).contains(&a);
                prop_assert_eq!(ab, ba, "symmetry violated between {} and {}", a, b);
            }
        }
    }

    #[test]
    fn arbitrary_small_worlds_run_without_panic_and_account_consistently(
        seed in any::<u64>(),
        coords in proptest::collection::vec((0.0f64..300.0, 0.0f64..300.0), 1..6),
        loss in 0.0f64..0.5,
        period_ms in 20u64..200,
        size in 1usize..2000,
    ) {
        let mut config = SimConfig::default();
        config.radio.baseline_loss = loss;
        let mut w = World::new(config, seed);
        for &(x, y) in &coords {
            w.add_node(Position::new(x, y), Box::new(Chatter { period_ms, size }));
        }
        w.run_until(SimTime::from_secs_f64(3.0));
        let s = w.stats();
        // Receptions cannot exceed frames × potential receivers.
        let max_receptions = s.frames_sent * (coords.len() as u64);
        prop_assert!(s.frames_delivered + s.frames_collided + s.frames_lost_random
            + s.frames_half_duplex <= max_receptions);
        // Bytes move only when frames do.
        prop_assert_eq!(s.bytes_sent > 0, s.frames_sent > 0);
        prop_assert_eq!(s.data_bytes_sent + s.ack_bytes_sent, s.bytes_sent);
    }

    #[test]
    fn replay_is_exact_for_any_seed(seed in any::<u64>()) {
        let run = |seed: u64| {
            let mut config = SimConfig::default();
            config.radio.baseline_loss = 0.1;
            let mut w = World::new(config, seed);
            w.add_node(Position::new(0.0, 0.0), Box::new(Chatter { period_ms: 30, size: 700 }));
            w.add_node(Position::new(40.0, 0.0), Box::new(Chatter { period_ms: 40, size: 900 }));
            w.add_node(Position::new(0.0, 40.0), Box::new(Chatter { period_ms: 50, size: 300 }));
            w.run_until(SimTime::from_secs_f64(2.0));
            w.stats().clone()
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    #[test]
    fn walking_never_overshoots_the_destination(
        from in (0.0f64..100.0, 0.0f64..100.0),
        to in (0.0f64..100.0, 0.0f64..100.0),
        speed in 0.1f64..10.0,
        at_s in 0.0f64..120.0,
    ) {
        let mut w = World::new(SimConfig::default(), 1);
        let id = w.add_node(
            Position::new(from.0, from.1),
            Box::new(Chatter { period_ms: 1000, size: 10 }),
        );
        let dest = Position::new(to.0, to.1);
        w.move_node(id, dest, speed);
        w.run_until(SimTime::from_secs_f64(at_s));
        let pos = w.position(id).expect("alive");
        let total = Position::new(from.0, from.1).distance(&dest);
        let walked = Position::new(from.0, from.1).distance(&pos);
        prop_assert!(walked <= total + 1e-6, "overshot: {} > {}", walked, total);
        // On the segment: dist(from, p) + dist(p, to) ≈ dist(from, to).
        let residual = pos.distance(&dest);
        prop_assert!((walked + residual - total).abs() < 1e-6);
    }
}
