#!/usr/bin/env bash
# Full reproduction pipeline: tests, every paper figure, benchmarks.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tests =="
cargo test --workspace

echo "== paper figures (CSV in results/) =="
cargo run --release -p pds-bench --bin figures -- all

echo "== benchmarks =="
cargo bench --workspace

echo "done — see results/, EXPERIMENTS.md and target/criterion/"
