#!/usr/bin/env bash
# Full reproduction pipeline: tests, every paper figure, benchmarks,
# and the session-level delay decomposition (DESIGN.md §14).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tests =="
cargo test --workspace

echo "== paper figures (CSV in results/) =="
cargo run --release -p pds-bench --bin figures -- all

echo "== session delay decomposition (results/delay_decomposition.txt) =="
# Trace the two-hop discovery+retrieval walkthrough, then decompose each
# session's end-to-end delay into queueing / contention / airtime /
# retransmission / processing along the cross-node critical path.
mkdir -p results
cargo run --release -p pds --example trace -- results/trace.jsonl >/dev/null
cargo run --release -p pds-obs -- critical-path results/trace.jsonl \
  | tee results/delay_decomposition.txt

echo "== benchmarks =="
cargo bench --workspace

echo "done — see results/, EXPERIMENTS.md and target/criterion/"
