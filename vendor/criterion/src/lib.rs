//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal wall-clock benchmark harness exposing the
//! subset of the criterion API its benches use: [`Criterion`] with the
//! builder knobs, [`criterion_group!`]/[`criterion_main!`] (named form),
//! benchmark groups, `Bencher::iter`/`iter_batched` and [`BatchSize`].
//!
//! Measurement model: after a warm-up period, iterations run until the
//! configured measurement time elapses; the mean wall-clock time per
//! iteration is printed. There is no statistical analysis, HTML report or
//! comparison baseline — this harness exists so `cargo bench` compiles,
//! runs and produces a usable time-per-iteration signal in CI.

// A benchmark harness measures wall time by definition; exempt from the
// workspace determinism clippy config (vendor crates sit outside the
// `xtask lint-determinism` scan roots).
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost (accepted for API parity; the
/// stub runs one setup per iteration regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Benchmark driver passed to `bench_function` closures.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    /// Filled by the iteration loop: (total time, iterations).
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `routine` repeatedly until the measurement window closes.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run without recording.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
        }
        let mut iters = 0u64;
        let start = Instant::now();
        loop {
            black_box(routine());
            iters += 1;
            if start.elapsed() >= self.measurement {
                break;
            }
        }
        self.result = Some((start.elapsed(), iters));
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded
    /// from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            let input = setup();
            black_box(routine(input));
        }
        let mut iters = 0u64;
        let mut spent = Duration::ZERO;
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            spent += start.elapsed();
            iters += 1;
            if spent >= self.measurement {
                break;
            }
        }
        self.result = Some((spent, iters));
    }
}

/// Top-level benchmark registry and configuration.
pub struct Criterion {
    sample_size: usize,
    measurement: Duration,
    warm_up: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 100,
            measurement: Duration::from_secs(2),
            warm_up: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the nominal sample count (accepted for API parity; the stub's
    /// time-bounded loop does not subdivide into samples).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Sets the measurement window per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Sets the warm-up period per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            result: None,
        };
        f(&mut b);
        report(name, b.result);
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
        }
    }
}

/// A named set of benchmarks sharing group-level configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the nominal sample count for the group (API parity).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Sets the measurement window for the group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement = d;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) {
        let full = format!("{}/{}", self.name, name);
        self.criterion.bench_function(&full, f);
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

fn report(name: &str, result: Option<(Duration, u64)>) {
    match result {
        Some((total, iters)) if iters > 0 => {
            let per_iter = total.as_secs_f64() / iters as f64;
            println!(
                "{name:<40} time: {} ({iters} iterations)",
                fmt_time(per_iter)
            );
        }
        _ => println!("{name:<40} time: (no measurement)"),
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes harness flags (e.g. --bench); ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> Criterion {
        Criterion::default()
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(1))
    }

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = fast().sample_size(10);
        let mut ran = 0u64;
        c.bench_function("smoke/iter", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            });
        });
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_gets_fresh_inputs() {
        let mut c = fast();
        c.bench_function("smoke/batched", |b| {
            b.iter_batched(
                || vec![1u8; 16],
                |v| {
                    assert_eq!(v.len(), 16);
                    v.len()
                },
                BatchSize::SmallInput,
            );
        });
    }

    #[test]
    fn groups_prefix_names() {
        let mut c = fast();
        let mut g = c.benchmark_group("grp");
        g.sample_size(5);
        g.bench_function("one", |b| b.iter(|| black_box(1)));
        g.finish();
    }

    #[test]
    fn time_formatting_scales() {
        assert!(fmt_time(2.5e-9).ends_with("ns"));
        assert!(fmt_time(2.5e-6).ends_with("µs"));
        assert!(fmt_time(2.5e-3).ends_with("ms"));
        assert!(fmt_time(2.5).ends_with('s'));
    }
}
