//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small subset of the `bytes` API it actually uses:
//! a cheaply clonable, sliceable byte container ([`Bytes`]) and the
//! [`Buf`]/[`BufMut`] cursor traits with the little-endian accessors the
//! PDS codecs rely on. Semantics match the upstream crate for this subset
//! (including `Buf for &[u8]` advancing the slice in place).

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply clonable, immutable, sliceable contiguous byte buffer.
///
/// Clones share the underlying allocation; `slice` produces a view without
/// copying.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a static byte slice without copying it.
    #[must_use]
    pub fn from_static(bytes: &'static [u8]) -> Self {
        // A stub cannot borrow 'static data into an Arc<[u8]> without
        // unsafe; one copy at construction keeps the same observable API.
        Self::from(bytes.to_vec())
    }

    /// Number of bytes in this view.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-view of `self` for the given range (in this view's
    /// coordinates), sharing the allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    #[must_use]
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Self {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Self {
            data,
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::from(v.to_vec())
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Self::from(v.as_bytes().to_vec())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Self::from(v.into_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Read cursor over a contiguous byte source.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Consumes `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `cnt` bytes remain.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies `dst.len()` bytes into `dst`, consuming them.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Consumes `len` bytes into an owned [`Bytes`].
    ///
    /// # Panics
    ///
    /// Panics if fewer than `len` bytes remain.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let mut v = vec![0u8; len];
        self.copy_to_slice(&mut v);
        Bytes::from(v)
    }

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics on underflow (as do all `get_*` accessors).
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        self.start += cnt;
    }
}

/// Write cursor over a growable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_clone_shares_and_slices() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let c = b.clone();
        assert_eq!(b, c);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn roundtrip_little_endian_accessors() {
        let mut out = Vec::new();
        out.put_u8(7);
        out.put_u16_le(0x1234);
        out.put_u32_le(0xdead_beef);
        out.put_u64_le(0x0102_0304_0506_0708);
        out.put_i64_le(-42);
        out.put_f64_le(1.5);
        out.put_slice(b"xy");
        let mut buf = &out[..];
        assert_eq!(buf.get_u8(), 7);
        assert_eq!(buf.get_u16_le(), 0x1234);
        assert_eq!(buf.get_u32_le(), 0xdead_beef);
        assert_eq!(buf.get_u64_le(), 0x0102_0304_0506_0708);
        assert_eq!(buf.get_i64_le(), -42);
        assert!((buf.get_f64_le() - 1.5).abs() < f64::EPSILON);
        let mut rest = [0u8; 2];
        buf.copy_to_slice(&mut rest);
        assert_eq!(&rest, b"xy");
        assert_eq!(buf.remaining(), 0);
        assert!(!buf.has_remaining());
    }

    #[test]
    fn copy_to_bytes_consumes() {
        let mut buf = &b"hello world"[..];
        let hello = buf.copy_to_bytes(5);
        assert_eq!(&hello[..], b"hello");
        assert_eq!(buf.remaining(), 6);
    }

    #[test]
    fn bytes_is_a_buf_too() {
        let mut b = Bytes::from(vec![9u8, 0, 0, 0, 1]);
        assert_eq!(b.get_u32_le(), 9);
        assert_eq!(b.get_u8(), 1);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn debug_is_printable() {
        let b = Bytes::from_static(b"a\x00b");
        assert_eq!(format!("{b:?}"), "b\"a\\x00b\"");
    }
}
