//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal, deterministic property-testing harness that
//! covers the subset of the proptest API its test suites use: the
//! [`proptest!`] macro, `prop_assert*` macros, [`prop_oneof!`], integer and
//! float range strategies, `any::<T>()`, tuple strategies, a tiny
//! character-class string strategy, `prop_map`, and the `collection::vec`,
//! `collection::btree_map` and `option::of` combinators.
//!
//! Differences from upstream: no shrinking (a failing case panics with the
//! generated inputs reachable via the deterministic per-test seed), and a
//! smaller default case count tuned for CI. Set `PROPTEST_CASES` to
//! override the number of cases per property.

pub mod test_runner {
    /// Deterministic generator state for one test case.
    ///
    /// Seeded from the test's module path and case index, so every run of
    /// the suite explores the same inputs — failures reproduce exactly.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the RNG for `case` of the named test.
        #[must_use]
        pub fn deterministic(test_name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h ^= u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            Self {
                state: if h == 0 { 1 } else { h },
            }
        }

        /// Next 64 uniform bits (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, n)`.
        ///
        /// # Panics
        ///
        /// Panics if `n == 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "empty range");
            self.next_u64() % n
        }
    }

    /// Per-property configuration (only the case count is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(32);
            Self { cases }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among several strategies ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options`.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    let off = (rng.next_u64() as i128).rem_euclid(span);
                    (self.start as i128 + off) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.next_f64() as f32) * (self.end - self.start)
        }
    }

    /// String strategy from a character-class pattern.
    ///
    /// Supports the `[<lo>-<hi>]{m,n}` subset of proptest's regex syntax
    /// (e.g. `"[a-z]{1,8}"`); any other pattern generates itself literally.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            match parse_class_pattern(self) {
                Some((lo, hi, min, max)) => {
                    let len = min + rng.below((max - min + 1) as u64) as usize;
                    (0..len)
                        .map(|_| {
                            let span = u64::from(hi) - u64::from(lo) + 1;
                            char::from_u32(u32::from(lo) + rng.below(span) as u32)
                                .expect("in-range char")
                        })
                        .collect()
                }
                None => (*self).to_owned(),
            }
        }
    }

    /// Parses `[x-y]{m,n}` into `(x, y, m, n)`.
    fn parse_class_pattern(p: &str) -> Option<(char, char, usize, usize)> {
        let rest = p.strip_prefix('[')?;
        let (class, rest) = rest.split_once(']')?;
        let mut chars = class.chars();
        let (lo, dash, hi) = (chars.next()?, chars.next()?, chars.next()?);
        if dash != '-' || chars.next().is_some() || lo > hi {
            return None;
        }
        let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
        let (m, n) = counts.split_once(',')?;
        let (min, max) = (m.trim().parse().ok()?, n.trim().parse().ok()?);
        if min > max {
            return None;
        }
        Some((lo, hi, min, max))
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary {
        /// Generates an arbitrary value of the type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite values across a wide dynamic range.
            let mag = rng.next_f64() * 1.0e12;
            if rng.next_u64() & 1 == 1 {
                -mag
            } else {
                mag
            }
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy over the whole domain of `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Element-count specification: an exact size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl SizeRange {
        fn draw(self, rng: &mut TestRng) -> usize {
            assert!(self.min < self.max, "empty size range");
            self.min + rng.below((self.max - self.min) as u64) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self {
                min: r.start,
                max: r.end,
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors of `element` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy returned by [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.draw(rng);
            let mut out = BTreeMap::new();
            // Random keys may collide; bounded retries keep generation total.
            for _ in 0..target.saturating_mul(8).max(8) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.key.generate(rng), self.value.generate(rng));
            }
            out
        }
    }

    /// A strategy for ordered maps with the given key/value strategies.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy returned by [`of`].
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // 1-in-4 None, matching upstream's default weighting closely
            // enough for coverage purposes.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// A strategy producing `Some` of the inner strategy or `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a test that runs the body over deterministically generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                #[allow(unused_imports)]
                use $crate::strategy::Strategy as _;
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    // An IIFE gives the body its own scope, so trailing
                    // expressions and temporaries drop inside the case.
                    #[allow(clippy::redundant_closure_call)]
                    (move || $body)();
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

pub mod prelude {
    //! The usual imports: `use proptest::prelude::*;`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("ranges", 0);
        for _ in 0..500 {
            let x = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&x));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
            let i = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn string_class_pattern_generates_in_class() {
        let mut rng = TestRng::deterministic("strings", 0);
        for _ in 0..200 {
            let s = "[a-z]{1,8}".generate(&mut rng);
            assert!((1..=8).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn collections_honor_sizes() {
        let mut rng = TestRng::deterministic("collections", 0);
        let v = crate::collection::vec(0u8..10, 8).generate(&mut rng);
        assert_eq!(v.len(), 8);
        let v = crate::collection::vec(0u8..10, 2..5).generate(&mut rng);
        assert!((2..5).contains(&v.len()));
        let m = crate::collection::btree_map(0u32..1000, 0u8..10, 3..6).generate(&mut rng);
        assert!(m.len() < 6);
    }

    #[test]
    fn deterministic_per_test_and_case() {
        let a = {
            let mut rng = TestRng::deterministic("x", 7);
            (0u64..1_000_000).generate(&mut rng)
        };
        let b = {
            let mut rng = TestRng::deterministic("x", 7);
            (0u64..1_000_000).generate(&mut rng)
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_smoke(
            a in 0u32..100,
            pair in (0u8..4, "[a-c]{1,3}"),
            choice in prop_oneof![Just(1u8), Just(2u8)],
            opt in crate::option::of(any::<u16>()),
        ) {
            prop_assert!(a < 100);
            prop_assert!(pair.0 < 4);
            prop_assert_ne!(pair.1.len(), 0);
            prop_assert!(choice == 1 || choice == 2);
            prop_assert_eq!(opt.is_none() || opt.is_some(), true);
        }
    }
}
